"""The dedup-aware re-execution driver (DESIGN.md §11).

:class:`Deduplicator` wraps the activation digest and the verdict cache
behind three hooks every driver shares -- ``fetch`` (digest + validated
lookup + rehydration), ``store`` (normalise a cleanly merged group's
effects and cache them), and ``begin_stage``/``finish_stage`` (metrics)
-- plus :meth:`Deduplicator.stage`, the sequential pipeline's dedup
reexec stage.

Trust model (why a hit can never flip a verdict):

* only *clean* groups are cached: the group executed without rejection,
  its journal replayed through the canonical merge without conflict, and
  every member's re-executed output equalled the trace's claimed
  response.  The cache stores facts about isolated executions, never
  audit verdicts -- ``_final_checks``, postprocess, isolation, and
  checkpoint extraction always run for real over the merged state;
* a hit is honoured only after revalidation: the entry's self-digest
  (load time), spec version, member count, *output digest against the
  current trace's claimed responses*, and effect digest must all match;
  any failure falls back to full re-execution (counted, never fatal);
* effects are stored rid-normalised with *positional* cross-references:
  external precedence references are re-resolved from the current run's
  advice at rehydration time (spec ``["log"]``), so a replayed claim
  conflicts with exactly the writes the current advice names -- a lying
  advice still REJECTs at the same canonical position;
* the digest pins everything an isolated group execution can observe
  (see :mod:`repro.verifier.dedup.digest`), so digest-equal groups are
  isomorphic up to rid renaming and the fanned-out effects are the ones
  execution would have produced.

The cache itself is auditor-private state, in the same trust class as
the checkpoint store: the integrity machinery defends against
corruption, truncation, staleness, and spec drift -- not against an
adversary with arbitrary write access to the auditor's own disk (who
could equally replace the auditor binary).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import MetricsRegistry
from repro.server.variables import INIT_REF
from repro.storage.values import decode_hid, encode_hid
from repro.verifier.dedup.cache import VERDICT_ACCEPT, VerdictCache, effect_sum, make_entry
from repro.verifier.dedup.digest import (
    DIGEST_SPEC,
    GroupDigest,
    canonical_json,
    denormalize_value,
    group_digest,
    member_token,
    normalize_value,
)
from repro.verifier.parallel import GroupDelta, execute_group, merge_delta
from repro.verifier.preprocess import AuditState
from repro.verifier.reexec import ReExecutor


class _Uncacheable(Exception):
    """This group's effects cannot be canonically normalised."""


class RehydrateMismatch(Exception):
    """A cached entry does not replay against the current run's advice."""


# -- op-key and prec-spec codecs ----------------------------------------------


def _encode_key(key: Any, tokens: Dict[str, str]) -> List[object]:
    rid, hid, opnum = key
    return [tokens.get(rid, rid), encode_hid(hid), opnum]


def _decode_key(spec: Any, detokens: Dict[str, str]) -> Tuple[str, object, int]:
    rid, hid_doc, opnum = spec
    return (detokens.get(rid, rid), decode_hid(hid_doc), int(opnum))


def _write_key_spec(key: Any, member_set: Any, tokens: Dict[str, str]) -> List[object]:
    """``["init"]`` / ``["in", ...coords]`` / ``["log"]`` (external: the
    reference is re-resolved from the current advice at rehydration)."""
    if key == INIT_REF:
        return ["init"]
    if key[0] in member_set:
        return ["in"] + _encode_key(key, tokens)
    return ["log"]


# -- effect normalisation ------------------------------------------------------


def normalize_effect(
    state: AuditState, rids: List[str], delta: GroupDelta, tokens: Dict[str, str]
) -> Dict[str, object]:
    """The storable, rid-free effect document of one clean group delta.

    Raises :class:`_Uncacheable` when any cross-reference cannot be made
    positional or any member rid survives normalisation (a value embeds
    a rid inside a longer string) -- the group then simply is not cached.
    """
    member_set = set(rids)
    journal: List[List[object]] = []
    for event in delta.journal:
        kind = event[0]
        if kind == "handlers":
            journal.append(["handlers", event[1]])
        elif kind == "claim":
            _, var_id, prec, key = event
            journal.append(
                ["claim", var_id,
                 _write_key_spec(prec, member_set, tokens),
                 _encode_key(key, tokens)]
            )
        elif kind == "fallback":
            _, var_id, prec, key = event
            spec = _write_key_spec(prec, member_set, tokens)
            if spec == ["log"]:
                raise _Uncacheable(f"fallback prec {prec!r} escapes the group")
            journal.append(["fallback", var_id, spec, _encode_key(key, tokens)])
        elif kind == "initializer":
            _, var_id, key = event
            journal.append(["initializer", var_id, _encode_key(key, tokens)])
        else:
            raise _Uncacheable(f"unknown journal event {kind!r}")

    executed = sorted(
        ([tokens.get(rid, rid), encode_hid(hid)] for rid, hid in delta.executed),
        key=canonical_json,
    )

    var_dicts = []
    for var_id in sorted(delta.var_dicts):
        rows = []
        for (rid, hid), writes in delta.var_dicts[var_id].items():
            rows.append(
                [
                    [tokens.get(rid, rid), encode_hid(hid)],
                    # Write order within a handler is load-bearing
                    # (FindNearestRPrecedingWrite): keep it verbatim.
                    [[opnum, normalize_value(value, tokens)]
                     for opnum, value in writes],
                ]
            )
        rows.sort(key=lambda row: canonical_json(row[0]))
        var_dicts.append([var_id, rows])

    read_observers = []
    for var_id in sorted(delta.read_observers):
        rows = []
        for write_key, readers in delta.read_observers[var_id].items():
            rows.append(
                [
                    _write_key_spec(write_key, member_set, tokens),
                    sorted((_encode_key(r, tokens) for r in readers),
                           key=canonical_json),
                ]
            )
        rows.sort(key=canonical_json)
        read_observers.append([var_id, rows])

    consumed = []
    for var_id in sorted(delta.consumed):
        consumed.append(
            [
                var_id,
                sorted((_encode_key(k, tokens) for k in delta.consumed[var_id]),
                       key=canonical_json),
            ]
        )

    plain_values = []
    for var_id in sorted(delta.plain_values):
        plain_values.append(
            [
                var_id,
                sorted(
                    ([tokens.get(rid, rid), normalize_value(value, tokens)]
                     for rid, value in delta.plain_values[var_id].items()),
                    key=canonical_json,
                ),
            ]
        )

    effect = {
        "journal": journal,
        "executed": executed,
        "var_dicts": var_dicts,
        "read_observers": read_observers,
        "consumed": consumed,
        "plain_values": plain_values,
    }
    serialized = canonical_json(effect)
    for rid in rids:
        if rid in serialized:
            raise _Uncacheable(f"member rid {rid!r} survives normalisation")
    return effect


# -- rehydration ---------------------------------------------------------------


def rehydrate_delta(
    state: AuditState,
    tag: str,
    rids: List[str],
    entry: Dict[str, object],
) -> GroupDelta:
    """Rebuild a :class:`GroupDelta` for this run from a cached entry.

    Outputs are set to the trace's claimed responses -- provably what
    execution would produce, since entries are only written for groups
    whose executed outputs matched the claims (and the entry's output
    digest was revalidated against the current claims before this runs).
    External precedence references (``["log"]`` specs) resolve against
    the *current* advice; anything that does not line up raises
    :class:`RehydrateMismatch`, and the caller re-executes in full.
    """
    detokens = {member_token(i): rid for i, rid in enumerate(rids)}
    logs = state.advice.variable_logs

    def resolve_write_key(var_id: str, spec: Any) -> Any:
        if spec[0] == "init":
            return INIT_REF
        if spec[0] == "in":
            return _decode_key(spec[1:], detokens)
        raise RehydrateMismatch(f"unresolvable write key spec {spec!r}")

    def resolve_prec_from_log(var_id: str, key: Any) -> Any:
        log_entry = logs.get(var_id, {}).get(key)
        if log_entry is None or log_entry.prec is None:
            raise RehydrateMismatch(
                f"advice no longer logs a prec at {key!r} for {var_id!r}"
            )
        return log_entry.prec

    try:
        delta = GroupDelta(tag=tag)
        for event in entry["effect"]["journal"]:
            kind = event[0]
            if kind == "handlers":
                delta.journal.append(("handlers", int(event[1])))
            elif kind == "claim":
                _, var_id, prec_spec, key_spec = event
                key = _decode_key(key_spec, detokens)
                if prec_spec[0] == "log":
                    prec = resolve_prec_from_log(var_id, key)
                else:
                    prec = resolve_write_key(var_id, prec_spec)
                delta.journal.append(("claim", var_id, prec, key))
            elif kind == "fallback":
                _, var_id, prec_spec, key_spec = event
                delta.journal.append(
                    ("fallback", var_id,
                     resolve_write_key(var_id, prec_spec),
                     _decode_key(key_spec, detokens))
                )
            elif kind == "initializer":
                _, var_id, key_spec = event
                delta.journal.append(
                    ("initializer", var_id, _decode_key(key_spec, detokens))
                )
            else:
                raise RehydrateMismatch(f"unknown journal event {kind!r}")

        delta.executed = {
            (detokens.get(rid, rid), decode_hid(hid_doc))
            for rid, hid_doc in entry["effect"]["executed"]
        }
        delta.outputs = {rid: state.trace.response(rid) for rid in rids}
        for var_id, rows in entry["effect"]["var_dicts"]:
            var_dict = {}
            for (rid, hid_doc), writes in rows:
                var_dict[(detokens.get(rid, rid), decode_hid(hid_doc))] = [
                    (int(opnum), denormalize_value(value, detokens))
                    for opnum, value in writes
                ]
            delta.var_dicts[var_id] = var_dict
        for var_id, rows in entry["effect"]["read_observers"]:
            observers = {}
            for write_spec, readers in rows:
                decoded = [_decode_key(r, detokens) for r in readers]
                if write_spec[0] == "log":
                    for reader in decoded:
                        prec = resolve_prec_from_log(var_id, reader)
                        observers.setdefault(prec, set()).add(reader)
                else:
                    write_key = resolve_write_key(var_id, write_spec)
                    observers.setdefault(write_key, set()).update(decoded)
            delta.read_observers[var_id] = observers
        for var_id, keys in entry["effect"]["consumed"]:
            delta.consumed[var_id] = {_decode_key(k, detokens) for k in keys}
        for var_id, rows in entry["effect"]["plain_values"]:
            delta.plain_values[var_id] = {
                detokens.get(rid, rid): denormalize_value(value, detokens)
                for rid, value in rows
            }
    except RehydrateMismatch:
        raise
    except Exception as exc:
        raise RehydrateMismatch(f"malformed cache entry: {exc}") from exc
    return delta


# -- the driver ----------------------------------------------------------------


@dataclass
class StageStats:
    """One reexec stage's dedup accounting."""

    hits_memo: int = 0
    hits_cache: int = 0
    misses: int = 0
    fallbacks: int = 0
    uncacheable: int = 0
    hint_skips: int = 0  # digesting skipped: statically-uncacheable route
    saved_handlers: List[int] = field(default_factory=list)

    @property
    def hits(self) -> int:
        return self.hits_memo + self.hits_cache


class Deduplicator:
    """Content-addressed re-execution dedup shared by every driver.

    ``cache=None`` disables the verdict cache (the CLI's ``--no-cache``)
    but keeps the in-run memo: digest-identical groups within one stage
    run still execute once and fan out.  One Deduplicator may serve many
    audits (the continuous auditor shares one across epochs; the CLI
    shares one across a ``--epochs`` stream), and the memo spans its
    whole lifetime.

    ``hints`` (a :class:`~repro.analysis.effects.StaticHints`) arms two
    static shortcuts, both verdict-neutral:

    * groups whose routes are *statically uncacheable* (unwrapped
      nondeterminism or side-channel state reachable) skip digest
      construction entirely -- the digest could never be stored anyway,
      so the hashing work on the hot path is pure waste;
    * cacheable groups digest with the initial-variable state restricted
      to the routes' statically-relevant read set, so groups differing
      only in irrelevant initial state dedup together.  Restricted
      digests carry the keep-set in the document (their own key
      universe), and fall back to the full pin whenever the static
      footprint is unbounded.
    """

    def __init__(
        self,
        cache: Optional[VerdictCache] = None,
        hints: Optional[object] = None,
    ):
        self.cache = cache
        self.hints = hints
        self.memo: Dict[str, Dict[str, object]] = {}
        self.stage_stats: Optional[StageStats] = None
        self._uncacheable_routes: Optional[frozenset] = None

    # -- stage accounting -------------------------------------------------------

    def begin_stage(self) -> StageStats:
        self.stage_stats = StageStats()
        return self.stage_stats

    def finish_stage(self, metrics: MetricsRegistry) -> None:
        stats = self.stage_stats
        if stats is None:
            return
        metrics.counter("reexec.cache_hits").inc(stats.hits_cache)
        metrics.counter("reexec.cache_misses").inc(stats.misses)
        metrics.counter("reexec.dedup_groups").inc(stats.hits)
        metrics.counter("reexec.cache_fallbacks").inc(stats.fallbacks)
        metrics.counter("reexec.uncacheable_groups").inc(stats.uncacheable)
        metrics.counter("reexec.hint_skipped_groups").inc(stats.hint_skips)
        total = stats.hits + stats.misses
        if total:
            metrics.gauge("reexec.dedup_ratio").set(stats.hits / total)
        for saved in stats.saved_handlers:
            metrics.histogram("reexec.dedup_saved_handlers").observe(saved)
        self.stage_stats = None

    def _count(self, name: str, amount: int = 1) -> None:
        if self.stage_stats is not None:
            setattr(
                self.stage_stats, name, getattr(self.stage_stats, name) + amount
            )

    # -- lookup -----------------------------------------------------------------

    def fetch(
        self, state: AuditState, tag: str, rids: List[str]
    ) -> Tuple[Optional[GroupDigest], Optional[GroupDelta]]:
        """Digest the group and return a rehydrated delta on a validated
        hit.  ``(None, None)``: uncacheable; ``(digest, None)``: miss --
        execute in full (and offer the clean result to :meth:`store`)."""
        keep_vars = None
        if self.hints is not None:
            routes = self._member_routes(state, rids)
            if routes is not None and routes & self._skip_routes():
                # Statically uncacheable route: the digest could never be
                # stored, so do not build it.
                self._count("hint_skips")
                self._count("misses")
                return None, None
            if routes is not None:
                keep_vars = self.hints.relevant_vars(routes)
        digest = group_digest(state, rids, keep_vars)
        if digest is None:
            self._count("uncacheable")
            self._count("misses")
            return None, None
        sources = [("memo", self.memo.get(digest.key))]
        if self.cache is not None:
            sources.append(("cache", self.cache.get(digest.key)))
        for source, entry in sources:
            if entry is None:
                continue
            if not self._validate(digest, entry, len(rids)):
                self._count("fallbacks")
                continue
            try:
                delta = rehydrate_delta(state, tag, rids, entry)
            except RehydrateMismatch:
                self._count("fallbacks")
                continue
            self._count("hits_memo" if source == "memo" else "hits_cache")
            if self.stage_stats is not None:
                self.stage_stats.saved_handlers.append(
                    int(entry.get("handlers", 0))
                )
            return digest, delta
        self._count("misses")
        return digest, None

    @staticmethod
    def _member_routes(state: AuditState, rids: List[str]) -> Optional[frozenset]:
        """Routes of the group's members, or None when any is unknown."""
        routes = set()
        for rid in rids:
            try:
                routes.add(state.trace.request(rid).route)
            except Exception:
                return None
        return frozenset(routes)

    def _skip_routes(self) -> frozenset:
        if self._uncacheable_routes is None:
            self._uncacheable_routes = self.hints.uncacheable_routes()
        return self._uncacheable_routes

    @staticmethod
    def _validate(digest: GroupDigest, entry: Dict[str, object], members: int) -> bool:
        try:
            return (
                entry["spec"] == DIGEST_SPEC
                and entry["verdict"] == VERDICT_ACCEPT
                and entry["members"] == members
                and entry["output_digest"] == digest.output_digest
                and effect_sum(entry["effect"]) == entry["effect_digest"]
            )
        except (KeyError, TypeError):
            return False

    # -- store ------------------------------------------------------------------

    def store(
        self,
        state: AuditState,
        rids: List[str],
        digest: GroupDigest,
        delta: GroupDelta,
    ) -> bool:
        """Cache one *cleanly merged* group.  Only groups whose executed
        outputs equal the trace's claimed responses are eligible --
        rehydration feeds the claims back, so caching a group whose
        output diverged would flip a later ``output-mismatch`` REJECT."""
        if delta.rejection is not None or digest.key in self.memo:
            return False
        try:
            for rid in rids:
                if rid not in delta.outputs:
                    return False
                if delta.outputs[rid] != state.trace.response(rid):
                    return False
            handlers = sum(e[1] for e in delta.journal if e[0] == "handlers")
            effect = normalize_effect(state, rids, delta, digest.tokens)
            entry = make_entry(
                key=digest.key,
                members=len(rids),
                handlers=handlers,
                output_digest=digest.output_digest,
                effect=effect,
            )
        except Exception:
            # Unencodable effects keep the group out of the cache; it
            # just re-executes next time.
            return False
        self.memo[digest.key] = entry
        if self.cache is not None:
            self.cache.put(entry)
        return True

    def close(self) -> None:
        if self.cache is not None:
            self.cache.close()

    # -- the sequential reexec stage ---------------------------------------------

    def stage(self, ctx: Any) -> None:
        """Drop-in replacement for ``stage_reexec_sequential``: same
        canonical group order, same merge semantics as the parallel
        driver's reduction, with digest-hit groups replayed instead of
        executed.  ``_final_checks`` runs for real on the merged state."""
        state = ctx.state
        ctx.re_exec = re_exec = ReExecutor(state)
        if ctx.singleton_groups:
            groups = {rid: [rid] for rid in state.advice.tags}
        else:
            groups = state.advice.groups()
        self.begin_stage()
        try:
            for tag in sorted(groups, reverse=ctx.reverse_groups):
                rids = groups[tag]
                digest, delta = self.fetch(state, tag, rids)
                executed = delta is None
                if executed:
                    delta = execute_group(state, tag, rids, False)
                merge_delta(re_exec, delta)
                if executed and digest is not None:
                    self.store(state, rids, digest, delta)
            re_exec._final_checks()
        finally:
            ctx.metrics.counter("reexec.groups").inc(re_exec.groups_executed)
            ctx.metrics.counter("reexec.handlers").inc(re_exec.handlers_executed)
            self.finish_stage(ctx.metrics)


def make_reexec_stage(dedup: Deduplicator) -> Callable[[Any], None]:
    """The sequential pipeline's dedup reexec stage."""
    return dedup.stage


__all__ = [
    "Deduplicator",
    "RehydrateMismatch",
    "StageStats",
    "make_reexec_stage",
    "normalize_effect",
    "rehydrate_delta",
]
