"""OOOAudit: the sequential reference audit (paper Figure 22).

OOOAudit re-executes operations one at a time following an *op schedule*
-- any topological order of the execution graph G that respects program
and activation order (a "well-formed" schedule, Definition 10).  The
paper's correctness argument proceeds in two steps:

* Lemma 1: all well-formed op schedules are equivalent (same verdict,
  same variable-state reconstruction);
* Lemma 3: the batched ``Audit`` is equivalent to OOOAudit on the schedule
  obtained by flattening its groups.

This module realises OOOAudit as the degenerate batched audit whose groups
are singletons, processed in schedule order.  Handler bodies between
operations are deterministic (KEM, section 3), so executing a handler's
ops consecutively is itself a well-formed schedule -- by Lemma 1 it is
equivalent to any interleaved one.  The test suite drives both group
orders and compares against ``Audit`` on honest and tampered inputs,
checking the lemmas' observable content.
"""

from __future__ import annotations

from repro.advice.records import Advice
from repro.kem.program import AppSpec
from repro.trace.trace import Trace
from repro.verifier.audit import AuditResult, Auditor


def ooo_audit(
    app: AppSpec, trace: Trace, advice: Advice, reverse_schedule: bool = False
) -> AuditResult:
    """Audit with singleton groups (one request at a time).

    ``reverse_schedule`` flips the request processing order, giving a
    second well-formed schedule for equivalence testing.
    """
    return Auditor(
        app,
        trace,
        advice,
        singleton_groups=True,
        reverse_groups=reverse_schedule,
    ).run()
