"""Carry-in state for epoch audits (continuous auditing, DESIGN.md §6).

A monolithic audit starts from genesis: the verifier runs the app's init
itself, so every variable's initial value and the empty KV store are
trusted.  Continuous auditing cuts the serving history into epochs and
audits each one separately; epoch N > 0 no longer starts from genesis but
from the *verified* end-of-epoch-(N-1) state.

:class:`CarryIn` packages that state:

* ``vars`` -- loggable/plain variable id -> value at the previous epoch's
  quiescent cut, as reconstructed by the verifier's own re-execution
  (never taken from the server);
* ``kv`` -- committed KV store contents at the cut, replayed by the
  verifier from the previous epoch's validated write order.

Trust argument: both maps are outputs of an *accepted* audit of epoch
N-1, chained by digest (:mod:`repro.continuous.checkpoint`), so feeding
them as epoch N's initializer state is exactly as trusted as the
verifier's own genesis init.  Within the verifier they are treated like
init-written values: simulate-and-check still applies to every logged
access, so a server that lies about a cross-epoch value is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class CarryIn:
    """Verified initializer state handed from one epoch audit to the next."""

    vars: Dict[str, object] = field(default_factory=dict)
    kv: Dict[str, object] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not self.vars and not self.kv
