"""Advice size measurement (paper section 6.3, Figure 8).

The paper reports the size of the advice the server transmits to the
verifier.  We measure the pickled size of each advice component -- a
uniform serializer applied to both Karousos and Orochi-JS advice, so the
*relative* sizes (the claim under test) are meaningful.
"""

from __future__ import annotations

import pickle
from typing import Dict

from repro.advice.records import Advice


def _size(obj: object) -> int:
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def advice_breakdown(advice: Advice) -> Dict[str, int]:
    """Bytes per advice component.  ``variable_logs`` dominating is the
    expected profile for MOTD and high-concurrency wiki (section 6.3)."""
    return {
        "tags": _size(advice.tags),
        "handler_logs": _size(advice.handler_logs),
        "variable_logs": _size(advice.variable_logs),
        "tx_logs": _size(advice.tx_logs),
        "write_order": _size(advice.write_order),
        "response_emitted_by": _size(advice.response_emitted_by),
        "opcounts": _size(advice.opcounts),
        "nondet": _size(advice.nondet),
        "tx_windows": _size(advice.tx_windows),
    }


def advice_size_bytes(advice: Advice) -> int:
    return sum(advice_breakdown(advice).values())
