"""Advice record types (paper Appendix C.1.3).

The honest server collects:

* ``tags`` -- the control-flow groupings C (section 4.1): requests with
  equal tags allegedly form one re-execution group;
* ``handler_logs`` -- per request, the ordered log of handler operations
  (register / unregister / emit);
* ``variable_logs`` -- per loggable variable, a map from operation
  coordinates to read/write entries (Figure 13 semantics);
* ``tx_logs`` -- per transaction, the ordered operation log with the
  dictating PUT of each GET (section 4.4);
* ``write_order`` -- the alleged global order of installed writes, as
  positions into the transaction logs;
* ``response_emitted_by`` -- which handler issued each response, and after
  how many of its operations;
* ``opcounts`` -- the number of operations of every executed handler;
* ``nondet`` -- recorded results of non-deterministic operations
  (section 5, "Non-determinism");
* ``isolation_level`` -- the isolation level the store allegedly provided.

All of it is *untrusted*: the verifier validates every piece (Figures
14-21), and the attack suite mutates each piece to confirm rejection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.ids import HandlerId, TxId
from repro.store.kv import IsolationLevel

# Handler-op types.
EMIT = "emit"
REGISTER = "register"
UNREGISTER = "unregister"

# Transactional op types (section 4.4).
TX_START = "tx_start"
TX_COMMIT = "tx_commit"
TX_ABORT = "tx_abort"
TX_PUT = "PUT"
TX_GET = "GET"

# Operation coordinates: (rid, hid, opnum).
OpKey = Tuple[str, HandlerId, int]

# Position of an op inside a transaction log: (rid, TxId, index).
TxPos = Tuple[str, TxId, int]


@dataclass(frozen=True)
class HandlerOpEntry:
    """One entry of a request's handler log.

    ``optype`` is EMIT / REGISTER / UNREGISTER.  ``event`` is the event
    name; ``function_id`` is set for register/unregister.
    """

    hid: HandlerId
    opnum: int
    optype: str
    event: str
    function_id: Optional[str] = None


@dataclass(frozen=True)
class VariableLogEntry:
    """One variable-log entry (Figure 13).

    READ entries reference the dictating write (``prec``); WRITE entries
    carry the value written and reference the overwritten write.  ``prec``
    is an OpKey or ``None`` (for backfilled writes whose predecessor was
    not itself logged, Figure 13 lines 15/22).
    """

    access: str  # "read" | "write"
    value: object = None
    prec: Optional[OpKey] = None


@dataclass(frozen=True)
class TxLogEntry:
    """One entry of a transaction log.

    ``opcontents`` is: the written value for PUT; the TxPos of the
    dictating PUT for GET (``None`` when the GET observed the initial,
    never-written state); ``None`` otherwise.
    """

    hid: HandlerId
    opnum: int
    optype: str
    key: Optional[str] = None
    opcontents: object = None


@dataclass
class Advice:
    """The complete advice bundle for one served trace."""

    tags: Dict[str, str] = field(default_factory=dict)
    handler_logs: Dict[str, List[HandlerOpEntry]] = field(default_factory=dict)
    variable_logs: Dict[str, Dict[OpKey, VariableLogEntry]] = field(default_factory=dict)
    tx_logs: Dict[Tuple[str, TxId], List[TxLogEntry]] = field(default_factory=dict)
    write_order: List[TxPos] = field(default_factory=list)
    response_emitted_by: Dict[str, Tuple[HandlerId, int]] = field(default_factory=dict)
    opcounts: Dict[Tuple[str, HandlerId], int] = field(default_factory=dict)
    nondet: Dict[OpKey, object] = field(default_factory=dict)
    isolation_level: IsolationLevel = IsolationLevel.SERIALIZABLE
    # Snapshot-isolation extension: alleged (start_seq, commit_seq) windows
    # per transaction; commit_seq is None for aborted transactions.
    tx_windows: Dict[Tuple[str, TxId], Tuple[int, Optional[int]]] = field(
        default_factory=dict
    )

    def groups(self) -> Dict[str, List[str]]:
        """Tag -> ordered request ids (the alleged re-execution groups)."""
        out: Dict[str, List[str]] = {}
        for rid in sorted(self.tags):
            out.setdefault(self.tags[rid], []).append(rid)
        return out

    def variable_log_entry_count(self) -> int:
        return sum(len(log) for log in self.variable_logs.values())

    def handler_log_entry_count(self) -> int:
        return sum(len(log) for log in self.handler_logs.values())

    def tx_log_entry_count(self) -> int:
        return sum(len(log) for log in self.tx_logs.values())
