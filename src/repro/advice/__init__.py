"""Advice structures the server ships to the verifier (Appendix C.1.3)."""

from repro.advice.records import (
    Advice,
    HandlerOpEntry,
    OpKey,
    TxLogEntry,
    VariableLogEntry,
    EMIT,
    REGISTER,
    UNREGISTER,
    TX_START,
    TX_COMMIT,
    TX_ABORT,
    TX_PUT,
    TX_GET,
)
from repro.advice.sizing import advice_size_bytes, advice_breakdown
from repro.advice.slicing import slice_advice

__all__ = [
    "slice_advice",
    "Advice",
    "HandlerOpEntry",
    "OpKey",
    "TxLogEntry",
    "VariableLogEntry",
    "EMIT",
    "REGISTER",
    "UNREGISTER",
    "TX_START",
    "TX_COMMIT",
    "TX_ABORT",
    "TX_PUT",
    "TX_GET",
    "advice_size_bytes",
    "advice_breakdown",
]
