"""Wire format for advice bundles.

The server ships advice to the verifier over a network (paper section 2.1:
"the advice sent from the server to the verifier needs to be kept small").
This codec serialises an :class:`~repro.advice.records.Advice` bundle to a
self-describing JSON document and back, with:

* a format-version field (rejecting unknown versions);
* stable encodings for handler ids (canonical path form), transaction ids,
  and operation coordinates;
* strict decoding -- any structural surprise raises
  :class:`~repro.errors.AdviceFormatError`, which the audit treats as a
  rejection (malformed advice is server misbehaviour, never a crash).

Values written by PUTs and variable writes are encoded via a tagged value
encoding that round-trips the Python types applications may store: None,
bool, int, float, str, and (possibly nested) lists/tuples/dicts.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.advice.records import (
    Advice,
    HandlerOpEntry,
    TxLogEntry,
    VariableLogEntry,
)
from repro.core.ids import HandlerId, TxId
from repro.errors import AdviceFormatError
from repro.store.kv import IsolationLevel

FORMAT_VERSION = 1


# -- handler ids ------------------------------------------------------------


def encode_hid(hid: HandlerId) -> List[List]:
    """Canonical path encoding: [[function_id, opnum], ...] root-first."""
    return [[fid, opnum] for fid, opnum in hid.canonical()]


def decode_hid(data: object) -> HandlerId:
    if not isinstance(data, list) or not data:
        raise AdviceFormatError(f"bad handler id encoding: {data!r}")
    hid: Optional[HandlerId] = None
    for part in data:
        if (
            not isinstance(part, list)
            or len(part) != 2
            or not isinstance(part[0], str)
            or not isinstance(part[1], int)
        ):
            raise AdviceFormatError(f"bad handler id segment: {part!r}")
        hid = HandlerId(part[0], hid, part[1])
    return hid


def encode_tid(tid: TxId) -> Dict:
    return {"hid": encode_hid(tid.hid), "opnum": tid.opnum}


def decode_tid(data: object) -> TxId:
    if not isinstance(data, dict) or set(data) != {"hid", "opnum"}:
        raise AdviceFormatError(f"bad transaction id encoding: {data!r}")
    if not isinstance(data["opnum"], int):
        raise AdviceFormatError("transaction opnum must be an int")
    return TxId(decode_hid(data["hid"]), data["opnum"])


# -- values --------------------------------------------------------------------


def encode_value(value: object) -> object:
    """Tagged encoding preserving tuple-ness and non-string dict keys."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return {"t": "p", "v": value}
    if isinstance(value, tuple):
        return {"t": "t", "v": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"t": "l", "v": [encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {
            "t": "d",
            "v": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    if isinstance(value, TxId):
        return {"t": "x", "v": encode_tid(value)}
    raise AdviceFormatError(f"unencodable value of type {type(value).__name__}")


def decode_value(data: object) -> object:
    if not isinstance(data, dict) or "t" not in data or "v" not in data:
        raise AdviceFormatError(f"bad value encoding: {data!r}")
    tag, v = data["t"], data["v"]
    if tag == "p":
        if v is not None and not isinstance(v, (bool, int, float, str)):
            raise AdviceFormatError(f"bad primitive: {v!r}")
        return v
    if tag == "t":
        return tuple(decode_value(x) for x in _expect_list(v))
    if tag == "l":
        return [decode_value(x) for x in _expect_list(v)]
    if tag == "d":
        out = {}
        for pair in _expect_list(v):
            if not isinstance(pair, list) or len(pair) != 2:
                raise AdviceFormatError(f"bad dict entry: {pair!r}")
            out[decode_value(pair[0])] = decode_value(pair[1])
        return out
    if tag == "x":
        return decode_tid(v)
    raise AdviceFormatError(f"unknown value tag {tag!r}")


# -- coordinates -----------------------------------------------------------------


def _encode_opkey(key: Tuple[str, HandlerId, int]) -> List:
    rid, hid, opnum = key
    return [rid, encode_hid(hid), opnum]


def _decode_opkey(data: object) -> Tuple[str, HandlerId, int]:
    if not isinstance(data, list) or len(data) != 3 or not isinstance(data[0], str):
        raise AdviceFormatError(f"bad op key: {data!r}")
    if not isinstance(data[2], int):
        raise AdviceFormatError(f"bad op key opnum: {data!r}")
    return (data[0], decode_hid(data[1]), data[2])


def _encode_txpos(pos: Tuple[str, TxId, int]) -> List:
    rid, tid, i = pos
    return [rid, encode_tid(tid), i]


def _decode_txpos(data: object) -> Tuple[str, TxId, int]:
    if not isinstance(data, list) or len(data) != 3 or not isinstance(data[0], str):
        raise AdviceFormatError(f"bad tx position: {data!r}")
    if not isinstance(data[2], int):
        raise AdviceFormatError(f"bad tx position index: {data!r}")
    return (data[0], decode_tid(data[1]), data[2])


# -- the bundle ----------------------------------------------------------------------


def encode_advice(advice: Advice) -> str:
    """Serialise to a JSON string."""
    doc = {
        "version": FORMAT_VERSION,
        "isolation": advice.isolation_level.value,
        "tags": advice.tags,
        "handler_logs": {
            rid: [
                {
                    "hid": encode_hid(e.hid),
                    "opnum": e.opnum,
                    "optype": e.optype,
                    "event": e.event,
                    "fid": e.function_id,
                }
                for e in log
            ]
            for rid, log in advice.handler_logs.items()
        },
        "variable_logs": {
            var_id: [
                {
                    "at": _encode_opkey(key),
                    "access": e.access,
                    "value": encode_value(e.value),
                    "prec": None if e.prec is None else _encode_opkey(e.prec),
                }
                for key, e in log.items()
            ]
            for var_id, log in advice.variable_logs.items()
        },
        "tx_logs": [
            {
                "rid": rid,
                "tid": encode_tid(tid),
                "ops": [
                    {
                        "hid": encode_hid(e.hid),
                        "opnum": e.opnum,
                        "optype": e.optype,
                        "key": e.key,
                        "contents": (
                            _encode_txpos(e.opcontents)
                            if e.optype == "GET" and e.opcontents is not None
                            else encode_value(e.opcontents)
                        ),
                    }
                    for e in log
                ],
            }
            for (rid, tid), log in advice.tx_logs.items()
        ],
        "write_order": [_encode_txpos(p) for p in advice.write_order],
        "response_emitted_by": {
            rid: [encode_hid(hid), opnum]
            for rid, (hid, opnum) in advice.response_emitted_by.items()
        },
        "opcounts": [
            [rid, encode_hid(hid), count]
            for (rid, hid), count in advice.opcounts.items()
        ],
        "nondet": [
            [_encode_opkey(key), encode_value(value)]
            for key, value in advice.nondet.items()
        ],
        "tx_windows": [
            [rid, encode_tid(tid), start, commit]
            for (rid, tid), (start, commit) in advice.tx_windows.items()
        ],
    }
    return json.dumps(doc, separators=(",", ":"))


def decode_advice(payload: str) -> Advice:
    """Parse and validate a JSON advice document.

    Any structural surprise -- wrong types, missing fields, bad nesting --
    raises :class:`AdviceFormatError`; no other exception escapes.
    """
    try:
        return _decode_advice(payload)
    except AdviceFormatError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, AttributeError) as exc:
        raise AdviceFormatError(
            f"malformed advice: {type(exc).__name__}: {exc}"
        ) from exc


def _decode_advice(payload: str) -> Advice:
    try:
        doc = json.loads(payload)
    except (TypeError, ValueError) as exc:
        raise AdviceFormatError(f"advice is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise AdviceFormatError("advice document must be an object")
    if doc.get("version") != FORMAT_VERSION:
        raise AdviceFormatError(f"unsupported advice version {doc.get('version')!r}")
    try:
        isolation = IsolationLevel(doc["isolation"])
    except (KeyError, ValueError) as exc:
        raise AdviceFormatError("bad isolation level") from exc

    advice = Advice(isolation_level=isolation)

    tags = doc.get("tags")
    if not isinstance(tags, dict):
        raise AdviceFormatError("tags must be an object")
    for rid, tag in tags.items():
        if not isinstance(tag, str):
            raise AdviceFormatError("tags must map to strings")
        advice.tags[rid] = tag

    for rid, log in _expect(doc, "handler_logs", dict).items():
        entries = []
        for e in _expect_list(log):
            entries.append(
                HandlerOpEntry(
                    decode_hid(e["hid"]),
                    _expect_int(e["opnum"]),
                    _expect_str(e["optype"]),
                    _expect_str(e["event"]),
                    e.get("fid"),
                )
            )
        advice.handler_logs[rid] = entries

    for var_id, entries in _expect(doc, "variable_logs", dict).items():
        log = {}
        for e in _expect_list(entries):
            key = _decode_opkey(e["at"])
            if key in log:
                raise AdviceFormatError(f"duplicate variable log key {key}")
            log[key] = VariableLogEntry(
                _expect_str(e["access"]),
                value=decode_value(e["value"]),
                prec=None if e["prec"] is None else _decode_opkey(e["prec"]),
            )
        advice.variable_logs[var_id] = log

    for tx in _expect(doc, "tx_logs", list):
        rid = _expect_str(tx["rid"])
        tid = decode_tid(tx["tid"])
        ops = []
        for e in _expect_list(tx["ops"]):
            optype = _expect_str(e["optype"])
            if optype == "GET" and e["contents"] is not None and isinstance(
                e["contents"], list
            ):
                contents = _decode_txpos(e["contents"])
            else:
                contents = decode_value(e["contents"])
            ops.append(
                TxLogEntry(
                    decode_hid(e["hid"]),
                    _expect_int(e["opnum"]),
                    optype,
                    e.get("key"),
                    contents,
                )
            )
        if (rid, tid) in advice.tx_logs:
            raise AdviceFormatError(f"duplicate transaction {(rid, tid)}")
        advice.tx_logs[(rid, tid)] = ops

    advice.write_order = [_decode_txpos(p) for p in _expect(doc, "write_order", list)]

    for rid, pair in _expect(doc, "response_emitted_by", dict).items():
        if not isinstance(pair, list) or len(pair) != 2:
            raise AdviceFormatError("bad response_emitted_by entry")
        advice.response_emitted_by[rid] = (decode_hid(pair[0]), _expect_int(pair[1]))

    for item in _expect(doc, "opcounts", list):
        if not isinstance(item, list) or len(item) != 3:
            raise AdviceFormatError("bad opcounts entry")
        rid, hid_doc, count = item
        advice.opcounts[(_expect_str(rid), decode_hid(hid_doc))] = _expect_int(count)

    for item in _expect(doc, "nondet", list):
        if not isinstance(item, list) or len(item) != 2:
            raise AdviceFormatError("bad nondet entry")
        advice.nondet[_decode_opkey(item[0])] = decode_value(item[1])

    for item in _expect(doc, "tx_windows", list):
        if not isinstance(item, list) or len(item) != 4:
            raise AdviceFormatError("bad tx window entry")
        rid, tid_doc, start, commit = item
        if commit is not None and not isinstance(commit, int):
            raise AdviceFormatError("bad tx window commit")
        advice.tx_windows[(_expect_str(rid), decode_tid(tid_doc))] = (
            _expect_int(start),
            commit,
        )

    return advice


# -- small validators ------------------------------------------------------------------


def _expect(doc: dict, field: str, kind: type):
    value = doc.get(field)
    if not isinstance(value, kind):
        raise AdviceFormatError(f"{field} must be {kind.__name__}")
    return value


def _expect_list(value: object) -> list:
    if not isinstance(value, list):
        raise AdviceFormatError("expected a list")
    return value


def _expect_int(value: object) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise AdviceFormatError(f"expected an int, got {value!r}")
    return value


def _expect_str(value: object) -> str:
    if not isinstance(value, str):
        raise AdviceFormatError(f"expected a string, got {value!r}")
    return value
