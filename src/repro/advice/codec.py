"""Wire format for advice bundles.

The server ships advice to the verifier over a network (paper section 2.1:
"the advice sent from the server to the verifier needs to be kept small").
Two physical shapes share one logical encoding:

* the legacy self-describing JSON document (:func:`encode_advice` /
  :func:`decode_advice`), kept as a thin wrapper over the per-section
  codecs below;
* a record stream (:mod:`repro.storage`): one meta record, then one
  record per tag / handler log / variable log / transaction log, so a
  bundle can be emitted and consumed incrementally
  (:func:`write_advice_records` / :func:`read_advice_records`).

Both are strict: any structural surprise raises
:class:`~repro.errors.AdviceFormatError`, which the audit treats as a
rejection (malformed advice is server misbehaviour, never a crash).

The tagged value encoding historically defined here lives in
:mod:`repro.storage.values`; the names are re-exported for
compatibility.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from repro.advice.records import (
    Advice,
    HandlerOpEntry,
    TxLogEntry,
    VariableLogEntry,
)
from repro.core.ids import HandlerId, TxId
from repro.errors import AdviceFormatError
from repro.storage.backend import RecordReader, RecordWriter, StorageBackend
from repro.storage.records import pack_json, unpack_json
from repro.storage.values import (  # noqa: F401  (compatibility re-exports)
    decode_hid,
    decode_tid,
    decode_value,
    encode_hid,
    encode_tid,
    encode_value,
)
from repro.store.kv import IsolationLevel

FORMAT_VERSION = 1

STREAM_KIND = "advice"

# Record types (stable wire identifiers; epoch streams embed these, so
# they must not collide with the epoch meta record (1) or the trace
# event record (2)).
RT_META = 19
RT_TAG = 20
RT_HANDLER_LOG = 21
RT_VARIABLE_LOG = 22
RT_TX_LOG = 23
RT_WRITE_ORDER = 24
RT_RESPONSE_BY = 25
RT_OPCOUNTS = 26
RT_NONDET = 27
RT_TX_WINDOWS = 28

ADVICE_RECORD_TYPES = (
    RT_META,
    RT_TAG,
    RT_HANDLER_LOG,
    RT_VARIABLE_LOG,
    RT_TX_LOG,
    RT_WRITE_ORDER,
    RT_RESPONSE_BY,
    RT_OPCOUNTS,
    RT_NONDET,
    RT_TX_WINDOWS,
)


# -- coordinates -----------------------------------------------------------------


def _encode_opkey(key: Tuple[str, HandlerId, int]) -> List:
    rid, hid, opnum = key
    return [rid, encode_hid(hid), opnum]


def _decode_opkey(data: object) -> Tuple[str, HandlerId, int]:
    if not isinstance(data, list) or len(data) != 3 or not isinstance(data[0], str):
        raise AdviceFormatError(f"bad op key: {data!r}")
    if not isinstance(data[2], int):
        raise AdviceFormatError(f"bad op key opnum: {data!r}")
    return (data[0], decode_hid(data[1]), data[2])


def _encode_txpos(pos: Tuple[str, TxId, int]) -> List:
    rid, tid, i = pos
    return [rid, encode_tid(tid), i]


def _decode_txpos(data: object) -> Tuple[str, TxId, int]:
    if not isinstance(data, list) or len(data) != 3 or not isinstance(data[0], str):
        raise AdviceFormatError(f"bad tx position: {data!r}")
    if not isinstance(data[2], int):
        raise AdviceFormatError(f"bad tx position index: {data!r}")
    return (data[0], decode_tid(data[1]), data[2])


# -- per-section entry codecs (shared by the JSON and record paths) -----------


def _encode_handler_entry(e: HandlerOpEntry) -> Dict:
    return {
        "hid": encode_hid(e.hid),
        "opnum": e.opnum,
        "optype": e.optype,
        "event": e.event,
        "fid": e.function_id,
    }


def _decode_handler_entry(e: Dict) -> HandlerOpEntry:
    return HandlerOpEntry(
        decode_hid(e["hid"]),
        _expect_int(e["opnum"]),
        _expect_str(e["optype"]),
        _expect_str(e["event"]),
        e.get("fid"),
    )


def _encode_varlog_entry(key, e: VariableLogEntry) -> Dict:
    return {
        "at": _encode_opkey(key),
        "access": e.access,
        "value": encode_value(e.value),
        "prec": None if e.prec is None else _encode_opkey(e.prec),
    }


def _decode_varlog_entry(e: Dict):
    key = _decode_opkey(e["at"])
    entry = VariableLogEntry(
        _expect_str(e["access"]),
        value=decode_value(e["value"]),
        prec=None if e["prec"] is None else _decode_opkey(e["prec"]),
    )
    return key, entry


def _encode_tx_entry(e: TxLogEntry) -> Dict:
    return {
        "hid": encode_hid(e.hid),
        "opnum": e.opnum,
        "optype": e.optype,
        "key": e.key,
        "contents": (
            _encode_txpos(e.opcontents)
            if e.optype == "GET" and e.opcontents is not None
            else encode_value(e.opcontents)
        ),
    }


def _decode_tx_entry(e: Dict) -> TxLogEntry:
    optype = _expect_str(e["optype"])
    if optype == "GET" and e["contents"] is not None and isinstance(
        e["contents"], list
    ):
        contents = _decode_txpos(e["contents"])
    else:
        contents = decode_value(e["contents"])
    return TxLogEntry(
        decode_hid(e["hid"]),
        _expect_int(e["opnum"]),
        optype,
        e.get("key"),
        contents,
    )


def _encode_tx_log(rid: str, tid: TxId, log: List[TxLogEntry]) -> Dict:
    return {
        "rid": rid,
        "tid": encode_tid(tid),
        "ops": [_encode_tx_entry(e) for e in log],
    }


def _encode_write_order(advice: Advice) -> List:
    return [_encode_txpos(p) for p in advice.write_order]


def _encode_response_by(advice: Advice) -> Dict:
    return {
        rid: [encode_hid(hid), opnum]
        for rid, (hid, opnum) in advice.response_emitted_by.items()
    }


def _encode_opcounts(advice: Advice) -> List:
    return [
        [rid, encode_hid(hid), count]
        for (rid, hid), count in advice.opcounts.items()
    ]


def _encode_nondet(advice: Advice) -> List:
    return [
        [_encode_opkey(key), encode_value(value)]
        for key, value in advice.nondet.items()
    ]


def _encode_tx_windows(advice: Advice) -> List:
    return [
        [rid, encode_tid(tid), start, commit]
        for (rid, tid), (start, commit) in advice.tx_windows.items()
    ]


# -- section accumulators (shared by the JSON and record decode paths) --------


def _accum_tag(advice: Advice, rid: object, tag: object) -> None:
    if not isinstance(rid, str) or not isinstance(tag, str):
        raise AdviceFormatError("tags must map request ids to strings")
    if rid in advice.tags:
        raise AdviceFormatError(f"duplicate tag for request {rid}")
    advice.tags[rid] = tag


def _accum_handler_log(advice: Advice, rid: object, log: object) -> None:
    rid = _expect_str(rid)
    if rid in advice.handler_logs:
        raise AdviceFormatError(f"duplicate handler log for request {rid}")
    advice.handler_logs[rid] = [
        _decode_handler_entry(e) for e in _expect_list(log)
    ]


def _accum_variable_log(advice: Advice, var_id: object, entries: object) -> None:
    var_id = _expect_str(var_id)
    if var_id in advice.variable_logs:
        raise AdviceFormatError(f"duplicate variable log for {var_id}")
    log = {}
    for e in _expect_list(entries):
        key, entry = _decode_varlog_entry(e)
        if key in log:
            raise AdviceFormatError(f"duplicate variable log key {key}")
        log[key] = entry
    advice.variable_logs[var_id] = log


def _accum_tx_log(advice: Advice, tx: Dict) -> None:
    rid = _expect_str(tx["rid"])
    tid = decode_tid(tx["tid"])
    ops = [_decode_tx_entry(e) for e in _expect_list(tx["ops"])]
    if (rid, tid) in advice.tx_logs:
        raise AdviceFormatError(f"duplicate transaction {(rid, tid)}")
    advice.tx_logs[(rid, tid)] = ops


def _accum_write_order(advice: Advice, doc: object) -> None:
    advice.write_order = [_decode_txpos(p) for p in _expect_list(doc)]


def _accum_response_by(advice: Advice, doc: object) -> None:
    if not isinstance(doc, dict):
        raise AdviceFormatError("response_emitted_by must be an object")
    for rid, pair in doc.items():
        if not isinstance(pair, list) or len(pair) != 2:
            raise AdviceFormatError("bad response_emitted_by entry")
        advice.response_emitted_by[rid] = (decode_hid(pair[0]), _expect_int(pair[1]))


def _accum_opcounts(advice: Advice, doc: object) -> None:
    for item in _expect_list(doc):
        if not isinstance(item, list) or len(item) != 3:
            raise AdviceFormatError("bad opcounts entry")
        rid, hid_doc, count = item
        advice.opcounts[(_expect_str(rid), decode_hid(hid_doc))] = _expect_int(count)


def _accum_nondet(advice: Advice, doc: object) -> None:
    for item in _expect_list(doc):
        if not isinstance(item, list) or len(item) != 2:
            raise AdviceFormatError("bad nondet entry")
        advice.nondet[_decode_opkey(item[0])] = decode_value(item[1])


def _accum_tx_windows(advice: Advice, doc: object) -> None:
    for item in _expect_list(doc):
        if not isinstance(item, list) or len(item) != 4:
            raise AdviceFormatError("bad tx window entry")
        rid, tid_doc, start, commit = item
        if commit is not None and not isinstance(commit, int):
            raise AdviceFormatError("bad tx window commit")
        advice.tx_windows[(_expect_str(rid), decode_tid(tid_doc))] = (
            _expect_int(start),
            commit,
        )


def _decode_isolation(value: object) -> IsolationLevel:
    try:
        return IsolationLevel(value)
    except ValueError as exc:
        raise AdviceFormatError("bad isolation level") from exc


# -- the legacy whole-document bundle -----------------------------------------


def encode_advice(advice: Advice) -> str:
    """Serialise to a JSON string."""
    doc = {
        "version": FORMAT_VERSION,
        "isolation": advice.isolation_level.value,
        "tags": advice.tags,
        "handler_logs": {
            rid: [_encode_handler_entry(e) for e in log]
            for rid, log in advice.handler_logs.items()
        },
        "variable_logs": {
            var_id: [_encode_varlog_entry(key, e) for key, e in log.items()]
            for var_id, log in advice.variable_logs.items()
        },
        "tx_logs": [
            _encode_tx_log(rid, tid, log)
            for (rid, tid), log in advice.tx_logs.items()
        ],
        "write_order": _encode_write_order(advice),
        "response_emitted_by": _encode_response_by(advice),
        "opcounts": _encode_opcounts(advice),
        "nondet": _encode_nondet(advice),
        "tx_windows": _encode_tx_windows(advice),
    }
    return json.dumps(doc, separators=(",", ":"))


def decode_advice(payload: str) -> Advice:
    """Parse and validate a JSON advice document.

    Any structural surprise -- wrong types, missing fields, bad nesting --
    raises :class:`AdviceFormatError`; no other exception escapes.
    """
    try:
        return _decode_advice(payload)
    except AdviceFormatError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, AttributeError) as exc:
        raise AdviceFormatError(
            f"malformed advice: {type(exc).__name__}: {exc}"
        ) from exc


def _decode_advice(payload: str) -> Advice:
    try:
        doc = json.loads(payload)
    except (TypeError, ValueError) as exc:
        raise AdviceFormatError(f"advice is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise AdviceFormatError("advice document must be an object")
    if doc.get("version") != FORMAT_VERSION:
        raise AdviceFormatError(f"unsupported advice version {doc.get('version')!r}")
    if "isolation" not in doc:
        raise AdviceFormatError("bad isolation level")
    advice = Advice(isolation_level=_decode_isolation(doc["isolation"]))

    tags = doc.get("tags")
    if not isinstance(tags, dict):
        raise AdviceFormatError("tags must be an object")
    for rid, tag in tags.items():
        _accum_tag(advice, rid, tag)

    for rid, log in _expect(doc, "handler_logs", dict).items():
        _accum_handler_log(advice, rid, log)

    for var_id, entries in _expect(doc, "variable_logs", dict).items():
        _accum_variable_log(advice, var_id, entries)

    for tx in _expect(doc, "tx_logs", list):
        _accum_tx_log(advice, tx)

    _accum_write_order(advice, _expect(doc, "write_order", list))
    _accum_response_by(advice, _expect(doc, "response_emitted_by", dict))
    _accum_opcounts(advice, _expect(doc, "opcounts", list))
    _accum_nondet(advice, _expect(doc, "nondet", list))
    _accum_tx_windows(advice, _expect(doc, "tx_windows", list))

    return advice


# -- record streams ------------------------------------------------------------


def iter_advice_frames(advice: Advice) -> Iterable[Tuple[int, bytes]]:
    """The bundle as ``(rtype, payload)`` frames, emitted section by
    section and entry by entry (big sections never serialise as one
    blob).  Epoch streams embed these frames directly."""
    yield RT_META, pack_json(
        {"version": FORMAT_VERSION, "isolation": advice.isolation_level.value}
    )
    for rid, tag in advice.tags.items():
        yield RT_TAG, pack_json([rid, tag])
    for rid, log in advice.handler_logs.items():
        yield RT_HANDLER_LOG, pack_json(
            {"rid": rid, "entries": [_encode_handler_entry(e) for e in log]}
        )
    for var_id, log in advice.variable_logs.items():
        yield RT_VARIABLE_LOG, pack_json(
            {
                "var": var_id,
                "entries": [_encode_varlog_entry(key, e) for key, e in log.items()],
            }
        )
    for (rid, tid), log in advice.tx_logs.items():
        yield RT_TX_LOG, pack_json(_encode_tx_log(rid, tid, log))
    yield RT_WRITE_ORDER, pack_json(_encode_write_order(advice))
    yield RT_RESPONSE_BY, pack_json(_encode_response_by(advice))
    yield RT_OPCOUNTS, pack_json(_encode_opcounts(advice))
    yield RT_NONDET, pack_json(_encode_nondet(advice))
    yield RT_TX_WINDOWS, pack_json(_encode_tx_windows(advice))


class AdviceAccumulator:
    """Builds an :class:`Advice` from a sequence of advice frames.

    Shared by the advice stream reader and the epoch stream reader; all
    validation is the same strict per-section logic the JSON path uses.
    """

    def __init__(self) -> None:
        self.advice = Advice()
        self._saw_meta = False
        self._singletons: set = set()

    def feed(self, rtype: int, payload: bytes) -> None:
        try:
            self._feed(rtype, payload)
        except AdviceFormatError:
            raise
        except (KeyError, TypeError, ValueError, IndexError, AttributeError) as exc:
            raise AdviceFormatError(
                f"malformed advice record: {type(exc).__name__}: {exc}"
            ) from exc

    def _feed(self, rtype: int, payload: bytes) -> None:
        if rtype == RT_META:
            if self._saw_meta:
                raise AdviceFormatError("duplicate advice meta record")
            doc = unpack_json(payload)
            if not isinstance(doc, dict) or doc.get("version") != FORMAT_VERSION:
                raise AdviceFormatError(f"unsupported advice stream meta {doc!r}")
            if "isolation" not in doc:
                raise AdviceFormatError("bad isolation level")
            self.advice.isolation_level = _decode_isolation(doc["isolation"])
            self._saw_meta = True
            return
        if not self._saw_meta:
            raise AdviceFormatError("advice stream has no meta record")
        doc = unpack_json(payload)
        if rtype == RT_TAG:
            if not isinstance(doc, list) or len(doc) != 2:
                raise AdviceFormatError(f"bad tag record {doc!r}")
            _accum_tag(self.advice, doc[0], doc[1])
        elif rtype == RT_HANDLER_LOG:
            _accum_handler_log(self.advice, doc["rid"], doc["entries"])
        elif rtype == RT_VARIABLE_LOG:
            _accum_variable_log(self.advice, doc["var"], doc["entries"])
        elif rtype == RT_TX_LOG:
            _accum_tx_log(self.advice, doc)
        elif rtype in _SINGLETON_SECTIONS:
            if rtype in self._singletons:
                raise AdviceFormatError(f"duplicate advice section record {rtype}")
            self._singletons.add(rtype)
            _SINGLETON_SECTIONS[rtype](self.advice, doc)
        else:
            raise AdviceFormatError(f"unknown advice record type {rtype}")

    def finish(self) -> Advice:
        if not self._saw_meta:
            raise AdviceFormatError("advice stream has no meta record")
        return self.advice


_SINGLETON_SECTIONS = {
    RT_WRITE_ORDER: _accum_write_order,
    RT_RESPONSE_BY: _accum_response_by,
    RT_OPCOUNTS: _accum_opcounts,
    RT_NONDET: _accum_nondet,
    RT_TX_WINDOWS: _accum_tx_windows,
}


def write_advice_records(
    advice: Advice, writer: RecordWriter, seal: bool = True
) -> None:
    for rtype, payload in iter_advice_frames(advice):
        writer.append(rtype, payload)
    if seal:
        writer.seal()


def read_advice_records(reader: RecordReader) -> Advice:
    if reader.kind != STREAM_KIND:
        raise AdviceFormatError(
            f"expected an {STREAM_KIND!r} stream, found {reader.kind!r}"
        )
    accum = AdviceAccumulator()
    for rtype, payload in reader:
        accum.feed(rtype, payload)
    return accum.finish()


def write_advice(backend: StorageBackend, name: str, advice: Advice) -> None:
    write_advice_records(advice, backend.create(name, STREAM_KIND))


def read_advice(backend: StorageBackend, name: str) -> Advice:
    with backend.reader(name) as reader:
        return read_advice_records(reader)


# -- small validators ------------------------------------------------------------------


def _expect(doc: dict, field: str, kind: type):
    value = doc.get(field)
    if not isinstance(value, kind):
        raise AdviceFormatError(f"{field} must be {kind.__name__}")
    return value


def _expect_list(value: object) -> list:
    if not isinstance(value, list):
        raise AdviceFormatError("expected a list")
    return value


def _expect_int(value: object) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise AdviceFormatError(f"expected an int, got {value!r}")
    return value


def _expect_str(value: object) -> str:
    if not isinstance(value, str):
        raise AdviceFormatError(f"expected a string, got {value!r}")
    return value
