"""Per-epoch advice slicing (continuous auditing, DESIGN.md §6).

``slice_advice(advice, rids)`` restricts an advice bundle to the requests
of one epoch.  Epochs are cut at *quiescent* points -- no in-flight
request, pending activation, or open transaction spans a cut -- which
makes the slice self-contained up to references into the past:

* a variable-log read/write whose ``prec`` names an earlier epoch's write
  is rewritten to reference :data:`~repro.server.variables.INIT_REF`, the
  initialisation pseudo-write.  At a quiescent cut the referenced write is
  necessarily the *final* pre-cut write of that variable (the server's
  cell tracks the last write; any later write would have replaced it), so
  its value is exactly the carried-in checkpoint value the verifier feeds
  for initializer reads;
* a transaction-log GET whose dictating PUT lives in an earlier epoch is
  rewritten to an initial-state read (``opcontents = None``); the verifier
  resolves those from the carried-in committed KV state.  The same
  final-write argument applies: at a quiescent cut the committed value of
  a key is the value installed by its last pre-cut committed writer;
* log entries *keyed* by out-of-epoch coordinates are dropped.  This
  removes genesis ``INIT_REF`` backfills (the initial value is the
  verifier's own, or the previous checkpoint's -- a server-supplied value
  would either be redundant or a false "forged-initial-value" conflict
  with the carry) and backfills that a later epoch wrote under an earlier
  epoch's coordinates (those entries postdate the earlier epoch's seal).

Everything keyed by request id -- tags, handler logs, response emitters,
opcounts, nondet records, transaction windows -- is filtered directly.
Soundness is unaffected by slicing errors a dishonest server might induce:
the slice is re-validated from scratch by the epoch's audit, and carried
values come from the verifier's own accepted checkpoint, never from the
server.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.advice.records import Advice, TX_GET, TxLogEntry, VariableLogEntry
from repro.server.variables import INIT_REF


def slice_advice(advice: Advice, rids: Iterable[str]) -> Advice:
    """A new :class:`Advice` bundle restricted to the requests ``rids``.

    The input bundle is not modified; entry objects are shared where
    unchanged and rebuilt where a cross-epoch reference was rewritten.
    """
    keep: Set[str] = set(rids)
    out = Advice(isolation_level=advice.isolation_level)
    out.tags = {rid: tag for rid, tag in advice.tags.items() if rid in keep}
    out.handler_logs = {
        rid: list(log) for rid, log in advice.handler_logs.items() if rid in keep
    }
    out.response_emitted_by = {
        rid: emitter
        for rid, emitter in advice.response_emitted_by.items()
        if rid in keep
    }
    out.opcounts = {
        key: count for key, count in advice.opcounts.items() if key[0] in keep
    }
    out.nondet = {
        key: value for key, value in advice.nondet.items() if key[0] in keep
    }
    out.tx_windows = {
        key: window for key, window in advice.tx_windows.items() if key[0] in keep
    }
    out.variable_logs = {
        var_id: _slice_variable_log(log, keep)
        for var_id, log in advice.variable_logs.items()
    }
    # Drop variables whose log has no in-epoch entries: an empty log means
    # "no R-concurrent accesses", identical to the variable never being
    # touched this epoch.
    out.variable_logs = {v: log for v, log in out.variable_logs.items() if log}
    out.tx_logs = {
        (rid, tid): _slice_tx_log(log, keep)
        for (rid, tid), log in advice.tx_logs.items()
        if rid in keep
    }
    out.write_order = [pos for pos in advice.write_order if pos[0] in keep]
    return out


def _slice_variable_log(
    log: Dict[Tuple, VariableLogEntry], keep: Set[str]
) -> Dict[Tuple, VariableLogEntry]:
    out: Dict[Tuple, VariableLogEntry] = {}
    for key, entry in log.items():
        if key[0] not in keep:
            continue
        if entry.prec is not None and entry.prec[0] not in keep:
            entry = VariableLogEntry(entry.access, value=entry.value, prec=INIT_REF)
        out[key] = entry
    return out


def _slice_tx_log(log: List[TxLogEntry], keep: Set[str]) -> List[TxLogEntry]:
    out: List[TxLogEntry] = []
    for entry in log:
        if (
            entry.optype == TX_GET
            and isinstance(entry.opcontents, tuple)
            and len(entry.opcontents) == 3
            and entry.opcontents[0] not in keep
        ):
            entry = TxLogEntry(
                entry.hid, entry.opnum, entry.optype, key=entry.key, opcontents=None
            )
        out.append(entry)
    return out
