"""The fuzz campaign driver: properties, corpus, and minimisation.

Two end-to-end properties over the bundled apps:

* **soundness** -- serve an honest workload, apply one schema-derived
  mutation (:mod:`repro.fuzz.surface`), audit the tampered pair.  A
  *guaranteed* mutation that ACCEPTs is an **escape**: concrete evidence
  that an audit check is missing or too weak.  Opportunistic mutations
  may accept (they can be semantically neutral); their verdicts are
  tallied but never escalate.
* **completeness** -- serve an honest workload and audit it unmutated
  through every driver (sequential, singleton-group, parallel,
  continuous) and storage backend (direct objects, memory, file, gzip
  record streams).  Any REJECT of an honest run is a **failure** of the
  audit's completeness guarantee.

Hypothesis drives both: a failing case shrinks to the smallest workload
and mutation that still violates the property (fewest requests, lowest
concurrency, first operator in schema order), and the minimal reproducer
is written to the corpus directory as JSON.  Campaign runs replay the
corpus *first*, so past escapes act as regression tests before new
random exploration starts.

Honest runs are memoised per :class:`WorkloadCase` -- the fuzzer redraws
many mutations per workload, and serving dominates wall-clock.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from hypothesis import HealthCheck, given
from hypothesis import seed as hypothesis_seed
from hypothesis import settings as hypothesis_settings

from repro.advice.codec import read_advice, write_advice
from repro.advice.records import Advice
from repro.core.digest import value_digest
from repro.fuzz.strategies import (
    APPS,
    OP_NAMES,
    CompletenessCase,
    MutationCase,
    WorkloadCase,
    case_from_json,
    completeness_cases,
    mutation_cases,
)
from repro.fuzz.surface import MutationNotApplicable, mutation_surface
from repro.harness.experiment import make_app
from repro.kem.scheduler import RandomScheduler
from repro.obs import NULL_METRICS, MetricsRegistry
from repro.server import KarousosPolicy, run_server
from repro.store import IsolationLevel, KVStore
from repro.trace.codec import read_trace, write_trace
from repro.trace.trace import Trace
from repro.verifier import Auditor
from repro.workload import workload_for

_OPS = {op.name: op for op in mutation_surface()}


class EscapeFound(AssertionError):
    """A property violation; hypothesis shrinks these, so the instance
    that finally propagates carries the *minimal* failing case."""

    def __init__(self, case, detail: str):
        self.case = case
        self.detail = detail
        super().__init__(f"{detail}: {case}")


@lru_cache(maxsize=48)
def serve_case(case: WorkloadCase) -> Tuple[Trace, Advice]:
    """Serve one workload case honestly (memoised; fully deterministic)."""
    store = (
        None
        if case.app == "motd"
        else KVStore(IsolationLevel(case.isolation))
    )
    run = run_server(
        make_app(case.app),
        workload_for(case.app, case.n, mix=case.mix, seed=case.workload_seed),
        KarousosPolicy(),
        store=store,
        scheduler=RandomScheduler(case.schedule_seed),
        concurrency=case.concurrency,
    )
    return run.trace.freeze(), run.advice


@lru_cache(maxsize=48)
def serve_sealed_case(case: WorkloadCase, seal_every: int):
    """Serve one workload with an :class:`EpochSealer` attached.

    Offline slicing of an *unsealed* trace can cut where a responded
    request still had live activations, legitimately rejecting an honest
    server (see :mod:`repro.continuous.epoch`).  The continuous
    completeness driver therefore audits epochs sealed at quiescent
    points during serving -- the same contract the CLI enforces by
    pairing ``audit --epochs`` with ``serve --seal-every``.
    """
    from repro.continuous import EpochSealer

    sealer = EpochSealer(seal_every)
    store = (
        None
        if case.app == "motd"
        else KVStore(IsolationLevel(case.isolation))
    )
    run_server(
        make_app(case.app),
        workload_for(case.app, case.n, mix=case.mix, seed=case.workload_seed),
        KarousosPolicy(),
        store=store,
        scheduler=RandomScheduler(case.schedule_seed),
        concurrency=case.concurrency,
        sealer=sealer,
    )
    return tuple(sealer.epochs)


@dataclass
class FuzzStats:
    """Campaign tallies (shrink re-runs included; they are real audits)."""

    examples: int = 0
    applied: int = 0
    skipped: int = 0
    opportunistic_accepts: int = 0
    rejects: Dict[str, int] = field(default_factory=dict)

    def record_reject(self, reason: str) -> None:
        self.rejects[reason] = self.rejects.get(reason, 0) + 1


def run_soundness_case(
    case: MutationCase,
    stats: Optional[FuzzStats] = None,
    metrics: MetricsRegistry = NULL_METRICS,
    dedup: Optional[object] = None,
) -> Optional[str]:
    """One soundness example; returns an escape detail string or None.

    ``dedup`` (a :class:`~repro.verifier.dedup.executor.Deduplicator`)
    audits through the deduplicated reexec stage instead -- used by the
    corpus replay so shrunk reproducers also exercise the cache path.
    """
    stats = stats if stats is not None else FuzzStats()
    stats.examples += 1
    trace, advice = serve_case(case.workload)
    op = _OPS[case.op]
    rng = random.Random(case.mutation_seed)
    try:
        tampered_trace, tampered_advice = op.apply(rng, trace, advice)
    except MutationNotApplicable:
        stats.skipped += 1
        return None
    stats.applied += 1
    metrics.counter("fuzz.mutations").inc()
    started = time.perf_counter()
    if dedup is not None:
        # Prime the cache on the honest pair first: the tampered audit
        # then runs against a warm cache, the adversarial configuration.
        Auditor(make_app(case.workload.app), trace, advice, dedup=dedup).run()
    result = Auditor(
        make_app(case.workload.app), tampered_trace, tampered_advice,
        dedup=dedup,
    ).run()
    elapsed = time.perf_counter() - started
    metrics.histogram("fuzz.audit_seconds").observe(elapsed)
    if not result.accepted:
        stats.record_reject(result.reason)
        metrics.histogram("fuzz.reject_seconds").observe(elapsed)
        metrics.counter("fuzz.rejects").inc()
        return None
    if op.is_guaranteed(advice):
        metrics.counter("fuzz.escapes").inc()
        return f"guaranteed mutation {case.op} ACCEPTed"
    stats.opportunistic_accepts += 1
    return None


def _roundtrip(backend_kind: str, trace: Trace, advice: Advice, tmp: str):
    """Push the pair through a storage backend and decode it back."""
    from repro.storage import backend_for

    path = None if backend_kind == "memory" else os.path.join(tmp, backend_kind)
    backend = backend_for(backend_kind, path)
    write_trace(backend, "trace", trace)
    write_advice(backend, "advice", advice)
    return read_trace(backend, "trace"), read_advice(backend, "advice")


def run_completeness_case(
    case: CompletenessCase,
    stats: Optional[FuzzStats] = None,
    metrics: MetricsRegistry = NULL_METRICS,
    dedup: Optional[object] = None,
) -> Optional[str]:
    """One completeness example; returns a failure detail string or None."""
    import tempfile

    stats = stats if stats is not None else FuzzStats()
    stats.examples += 1
    app = make_app(case.workload.app)
    if case.driver == "continuous":
        from repro.continuous import ContinuousAuditor, Epoch

        epochs = serve_sealed_case(
            case.workload, max(2, case.workload.n // 3)
        )
        if case.backend != "direct":
            with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
                epochs = [
                    Epoch(
                        e.index,
                        *_roundtrip(
                            case.backend,
                            e.trace,
                            e.advice,
                            os.path.join(tmp, f"epoch{e.index}"),
                        ),
                        e.binlog_range,
                    )
                    for e in epochs
                ]
        auditor = ContinuousAuditor(app, dedup=dedup)
        verdicts = auditor.run(epochs)
        rejection = auditor.first_rejection
        if rejection is not None or not all(v.accepted for v in verdicts):
            reason = rejection.result.reason if rejection else "unknown"
            stats.record_reject(reason)
            return (
                f"honest run REJECTed by continuous driver via "
                f"{case.backend} backend: {reason}"
            )
        stats.applied += 1
        return None
    trace, advice = serve_case(case.workload)
    if case.backend != "direct":
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
            trace, advice = _roundtrip(case.backend, trace, advice, tmp)
    kwargs = {}
    if case.driver == "singleton":
        kwargs["singleton_groups"] = True
    elif case.driver == "parallel":
        kwargs["parallelism"] = 2
        kwargs["parallel_mode"] = "thread"
    result = Auditor(app, trace, advice, dedup=dedup, **kwargs).run()
    if not result.accepted:
        stats.record_reject(result.reason)
        return (
            f"honest run REJECTed by {case.driver} driver via "
            f"{case.backend} backend: {result.reason}: {result.detail}"
        )
    stats.applied += 1
    return None


# -- corpus ------------------------------------------------------------------


def corpus_path(corpus_dir: str, prop: str, case) -> str:
    digest = value_digest(case.as_json())[:16]
    return os.path.join(corpus_dir, f"{prop}-{digest}.json")


def write_corpus_case(corpus_dir: str, prop: str, case, detail: str) -> str:
    os.makedirs(corpus_dir, exist_ok=True)
    path = corpus_path(corpus_dir, prop, case)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {"property": prop, "detail": detail, "case": case.as_json()},
            fh,
            indent=2,
            sort_keys=True,
        )
        fh.write("\n")
    return path


def read_corpus(corpus_dir: str, prop: str) -> List[Tuple[str, object]]:
    """(path, case) pairs for every stored reproducer of ``prop``."""
    if not corpus_dir or not os.path.isdir(corpus_dir):
        return []
    out = []
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(corpus_dir, name)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            continue
        if doc.get("property") != prop:
            continue
        out.append((path, case_from_json(doc["case"])))
    return out


# -- campaign ----------------------------------------------------------------


@dataclass
class FuzzReport:
    """Everything one campaign learned."""

    prop: str
    apps: Tuple[str, ...]
    seed: int
    max_examples: int
    stats: FuzzStats
    escapes: List[Dict[str, object]] = field(default_factory=list)
    corpus_replayed: int = 0
    corpus_failures: List[Dict[str, object]] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.escapes and not self.corpus_failures

    def as_json(self) -> Dict[str, object]:
        return {
            "property": self.prop,
            "apps": list(self.apps),
            "seed": self.seed,
            "max_examples": self.max_examples,
            "examples": self.stats.examples,
            "applied": self.stats.applied,
            "skipped": self.stats.skipped,
            "opportunistic_accepts": self.stats.opportunistic_accepts,
            "rejects": dict(sorted(self.stats.rejects.items())),
            "escapes": self.escapes,
            "corpus_replayed": self.corpus_replayed,
            "corpus_failures": self.corpus_failures,
            "elapsed_seconds": self.elapsed_seconds,
            "clean": self.clean,
        }


def run_fuzz(
    prop: str = "soundness",
    apps: Sequence[str] = APPS,
    seed: int = 0,
    max_examples: int = 100,
    corpus_dir: Optional[str] = None,
    metrics: MetricsRegistry = NULL_METRICS,
    max_requests: int = 14,
    ops: Optional[Sequence[str]] = None,
) -> FuzzReport:
    """One fuzz campaign: corpus replay, then seeded random exploration.

    Returns a report rather than raising -- escapes are findings, and a
    campaign that found one still has a summary worth printing.  The
    first escape stops exploration (hypothesis has already shrunk it to
    a minimal case by then) and, when ``corpus_dir`` is given, persists
    it for replay in every later campaign.
    """
    if prop not in ("soundness", "completeness"):
        raise ValueError(f"unknown fuzz property {prop!r}")
    stats = FuzzStats()
    report = FuzzReport(
        prop=prop,
        apps=tuple(apps),
        seed=seed,
        max_examples=max_examples,
        stats=stats,
    )
    started = time.perf_counter()
    run_case = (
        run_soundness_case if prop == "soundness" else run_completeness_case
    )

    # 1. Corpus replay: past reproducers must stay fixed.  Each case
    # replays twice -- plain, then through the deduplicated reexec stage
    # with a fresh verdict cache -- so shrunk reproducers exercise the
    # cache path by default.
    for path, case in read_corpus(corpus_dir, prop):
        from repro.verifier.dedup import Deduplicator, VerdictCache

        report.corpus_replayed += 1
        detail = run_case(case, stats, metrics)
        if detail is None:
            detail = run_case(
                case, stats, metrics, dedup=Deduplicator(VerdictCache())
            )
            if detail is not None:
                detail = f"[dedup replay] {detail}"
        if detail is not None:
            report.corpus_failures.append(
                {"path": path, "detail": detail, "case": case.as_json()}
            )

    # 2. Seeded exploration with shrinking.  max_examples=0 is a pure
    # corpus-replay run (regression gate without new exploration).
    if max_examples <= 0:
        report.elapsed_seconds = time.perf_counter() - started
        return report
    if prop == "soundness":
        strategy = mutation_cases(apps=apps, ops=ops, max_requests=max_requests)
    else:
        strategy = completeness_cases(apps=apps, max_requests=max_requests)

    def property_test(case):
        detail = run_case(case, stats, metrics)
        if detail is not None:
            raise EscapeFound(case, detail)

    wrapped = hypothesis_seed(seed)(
        hypothesis_settings(
            max_examples=max_examples,
            deadline=None,
            database=None,
            derandomize=False,
            print_blob=False,
            suppress_health_check=list(HealthCheck),
        )(given(strategy)(property_test))
    )
    try:
        wrapped()
    except EscapeFound as escape:
        finding: Dict[str, object] = {
            "detail": escape.detail,
            "case": escape.case.as_json(),
        }
        if corpus_dir:
            finding["corpus"] = write_corpus_case(
                corpus_dir, prop, escape.case, escape.detail
            )
        report.escapes.append(finding)
    report.elapsed_seconds = time.perf_counter() - started
    return report
