"""Verdict-cache poisoning operators (DESIGN.md §11 soundness property).

The verdict cache is the one place the dedup subsystem persists state
between audits, so it is the one place an on-disk corruption (bit rot,
torn write, stale file, hostile edit) could try to change a verdict.
These operators tamper with a persisted cache stream the way the advice
fuzzer tampers with advice, and the property the tests assert is the
cache trust model itself:

    **a poisoned cache never changes the final verdict** -- every record
    either fails load-time validation (skipped; the entry re-executes)
    or fails hit-time revalidation (fallback; the group re-executes),
    and the audit's verdict, reason, and stats are byte-identical to the
    cache-off run.

Each operator takes the backend holding a cache stream and mutates it in
place.  They deliberately target the different validation layers:

* ``flip-verdict`` / ``tamper-effect`` / ``stale-output`` rewrite entry
  fields *and re-sign the outer record*, so the frame CRC and the
  record's self-digest both pass -- only the semantic checks (verdict
  whitelist, effect digest, hit-time output revalidation) can catch
  them;
* ``break-sum`` rewrites an entry without re-signing (caught by the
  record self-digest);
* ``truncate-frame`` cuts the stream mid-record (a torn tail);
* ``corrupt-bytes`` flips raw bytes inside a frame (caught by the CRC);
* ``foreign-spec`` rewrites the stream meta record to a different digest
  spec (the whole cache must load as empty).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.storage.backend import StorageBackend
from repro.verifier.dedup.cache import (
    RT_CACHE_ENTRY,
    RT_CACHE_META,
    STREAM_KIND,
    STREAM_NAME,
    entry_sum,
)
from repro.verifier.dedup.digest import canonical_json


@dataclass(frozen=True)
class PoisonOp:
    """One cache-poisoning operator."""

    name: str
    description: str
    apply: Callable[[StorageBackend, str], None]


def _read_records(backend: StorageBackend, name: str) -> List[tuple]:
    with backend.reader(name) as reader:
        return list(reader)


def _read_raw(backend: StorageBackend, name: str) -> bytes:
    if hasattr(backend, "raw"):  # MemoryBackend's corruption hook
        return bytes(backend.raw(name))
    with open(backend._path(name), "rb") as fh:
        return fh.read()


def _write_raw(backend: StorageBackend, name: str, data: bytes) -> None:
    if hasattr(backend, "raw"):
        buf = backend.raw(name)
        buf[:] = data
        return
    with open(backend._path(name), "wb") as fh:
        fh.write(data)


def _rewrite(backend: StorageBackend, name: str, records: List[tuple]) -> None:
    backend.delete(name)
    writer = backend.create(name, STREAM_KIND)
    for rtype, payload in records:
        writer.append(rtype, payload)
    writer.seal()


def _mutate_entries(
    backend: StorageBackend, name: str, fn: Callable[[Dict], Dict], resign: bool
) -> None:
    """Apply ``fn`` to every stored entry; with ``resign`` the outer
    record digest is recomputed so only semantic checks can reject it."""
    out = []
    for rtype, payload in _read_records(backend, name):
        if rtype == RT_CACHE_ENTRY:
            doc = json.loads(payload.decode("utf-8"))
            doc["entry"] = fn(doc["entry"])
            if resign:
                doc["sum"] = entry_sum(doc["entry"])
            payload = canonical_json(doc).encode("utf-8")
        out.append((rtype, payload))
    _rewrite(backend, name, out)


def _flip_verdict(backend: StorageBackend, name: str) -> None:
    def fn(entry):
        entry = dict(entry)
        entry["verdict"] = "reject"
        return entry

    _mutate_entries(backend, name, fn, resign=True)


def _stale_output(backend: StorageBackend, name: str) -> None:
    def fn(entry):
        entry = dict(entry)
        entry["output_digest"] = "0" * 64
        return entry

    _mutate_entries(backend, name, fn, resign=True)


def _tamper_effect(backend: StorageBackend, name: str) -> None:
    def fn(entry):
        entry = dict(entry)
        effect = json.loads(canonical_json(entry["effect"]))
        effect["journal"] = [["handlers", 0]]
        effect["executed"] = []
        entry["effect"] = effect  # effect_digest now lies
        return entry

    _mutate_entries(backend, name, fn, resign=True)


def _break_sum(backend: StorageBackend, name: str) -> None:
    def fn(entry):
        entry = dict(entry)
        entry["members"] = int(entry.get("members", 0)) + 1
        return entry

    _mutate_entries(backend, name, fn, resign=False)


def _truncate_frame(backend: StorageBackend, name: str) -> None:
    raw = _read_raw(backend, name)
    # Cut mid-frame: the classic crash artefact (torn tail).
    _write_raw(backend, name, raw[: len(raw) - max(1, len(raw) // 10)])


def _corrupt_bytes(backend: StorageBackend, name: str) -> None:
    raw = bytearray(_read_raw(backend, name))
    # Flip bytes in the back half, past the header and meta record, so
    # a later entry frame's CRC breaks while the prefix stays clean.
    for offset in range(len(raw) - len(raw) // 4, len(raw), 7):
        raw[offset] ^= 0xFF
    _write_raw(backend, name, bytes(raw))


def _foreign_spec(backend: StorageBackend, name: str) -> None:
    out = []
    for rtype, payload in _read_records(backend, name):
        if rtype == RT_CACHE_META:
            payload = canonical_json({"spec": "repro.digest/999"}).encode("utf-8")
        out.append((rtype, payload))
    _rewrite(backend, name, out)


POISON_OPS = (
    PoisonOp("flip-verdict",
             "rewrite every entry's verdict to 'reject', re-signed",
             _flip_verdict),
    PoisonOp("stale-output",
             "replace every entry's output digest, re-signed "
             "(simulates a cache from a different trace)",
             _stale_output),
    PoisonOp("tamper-effect",
             "rewrite every entry's effect document without updating "
             "its effect digest, re-signed",
             _tamper_effect),
    PoisonOp("break-sum",
             "tamper an entry field without re-signing the record",
             _break_sum),
    PoisonOp("truncate-frame",
             "cut the stream mid-record (torn tail)",
             _truncate_frame),
    PoisonOp("corrupt-bytes",
             "flip raw bytes inside stored frames (CRC breakage)",
             _corrupt_bytes),
    PoisonOp("foreign-spec",
             "rewrite the stream meta to a foreign digest spec",
             _foreign_spec),
)


def poison(backend: StorageBackend, op_name: str, name: str = STREAM_NAME) -> None:
    """Apply one poisoning operator to the cache stream ``name``."""
    for op in POISON_OPS:
        if op.name == op_name:
            op.apply(backend, name)
            return
    raise KeyError(f"unknown poison operator {op_name!r}")


__all__ = ["POISON_OPS", "PoisonOp", "poison"]
