"""Adversarial-advice fuzzer (``repro fuzz``).

Property-based testing of the audit's two contracts: *soundness* (every
guaranteed semantics-changing mutation of the trace/advice pair is
REJECTed) and *completeness* (every honest run ACCEPTs under every
driver and storage backend).  The mutation surface is derived from the
advice/trace record schemas, not hand-listed; escapes shrink to minimal
reproducers and persist to a replay-first corpus.
"""

from repro.fuzz.driver import (
    EscapeFound,
    FuzzReport,
    FuzzStats,
    read_corpus,
    run_completeness_case,
    run_fuzz,
    run_soundness_case,
    serve_case,
    write_corpus_case,
)
from repro.fuzz.strategies import (
    APPS,
    BACKENDS,
    DRIVERS,
    OP_NAMES,
    CompletenessCase,
    MutationCase,
    WorkloadCase,
    case_from_json,
    completeness_cases,
    mutation_cases,
    workload_cases,
)
from repro.fuzz.surface import (
    MutationNotApplicable,
    MutationOp,
    advice_sections,
    guaranteed_ops,
    mutation_surface,
    perturb,
)

__all__ = [
    "APPS",
    "BACKENDS",
    "DRIVERS",
    "OP_NAMES",
    "CompletenessCase",
    "EscapeFound",
    "FuzzReport",
    "FuzzStats",
    "MutationCase",
    "MutationNotApplicable",
    "MutationOp",
    "WorkloadCase",
    "advice_sections",
    "case_from_json",
    "completeness_cases",
    "guaranteed_ops",
    "mutation_cases",
    "mutation_surface",
    "perturb",
    "read_corpus",
    "run_completeness_case",
    "run_fuzz",
    "run_soundness_case",
    "serve_case",
    "workload_cases",
    "write_corpus_case",
]
