"""Hypothesis strategies for the adversarial-advice fuzzer.

Two case shapes, both plain frozen dataclasses so they serialise to the
corpus and replay deterministically:

* :class:`WorkloadCase` -- which bundled app to serve, how many requests,
  which mix/seed/schedule/concurrency/isolation.  Exercised directly by
  the *completeness* property (honest runs must ACCEPT under every
  driver and storage backend).
* :class:`MutationCase` -- a workload plus one schema-derived mutation
  operator and its rng seed.  Exercised by the *soundness* property
  (guaranteed mutations must REJECT).

Strategies shrink toward the smallest workload (fewest requests, lowest
concurrency, first app/operator in order), so a fuzzer-found escape
minimises to a tight reproducer.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, Sequence, Tuple

from hypothesis import strategies as st

from repro.fuzz.surface import mutation_surface
from repro.workload.generator import MIX_MIXED, MIX_READ_HEAVY, MIX_WRITE_HEAVY

APPS: Tuple[str, ...] = ("motd", "stacks", "wiki", "feed")
MIXES: Tuple[str, ...] = (MIX_MIXED, MIX_READ_HEAVY, MIX_WRITE_HEAVY)
# motd is store-less; isolation only matters for the store-backed apps.
ISOLATION_LEVELS: Tuple[str, ...] = ("serializable", "snapshot", "read-committed")
DRIVERS: Tuple[str, ...] = ("serial", "singleton", "parallel", "continuous")
BACKENDS: Tuple[str, ...] = ("direct", "memory", "file", "gzip")

OP_NAMES: Tuple[str, ...] = tuple(op.name for op in mutation_surface())


@dataclass(frozen=True)
class WorkloadCase:
    """One honest serving configuration (fully deterministic)."""

    app: str = "motd"
    n: int = 4
    mix: str = MIX_MIXED
    workload_seed: int = 0
    schedule_seed: int = 0
    concurrency: int = 1
    isolation: str = "serializable"

    def as_json(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class MutationCase:
    """A workload plus one mutation draw from the schema surface."""

    workload: WorkloadCase = WorkloadCase()
    op: str = OP_NAMES[0]
    mutation_seed: int = 0

    def as_json(self) -> Dict[str, object]:
        doc = asdict(self)
        doc["workload"] = self.workload.as_json()
        return doc


@dataclass(frozen=True)
class CompletenessCase:
    """A workload exercised through one driver/backend combination."""

    workload: WorkloadCase = WorkloadCase()
    driver: str = "serial"
    backend: str = "direct"

    def as_json(self) -> Dict[str, object]:
        doc = asdict(self)
        doc["workload"] = self.workload.as_json()
        return doc


def case_from_json(doc: Dict[str, object]):
    """Inverse of ``as_json`` for all three case shapes."""
    if "op" in doc:
        return MutationCase(
            workload=WorkloadCase(**doc["workload"]),
            op=doc["op"],
            mutation_seed=doc["mutation_seed"],
        )
    if "driver" in doc:
        return CompletenessCase(
            workload=WorkloadCase(**doc["workload"]),
            driver=doc["driver"],
            backend=doc["backend"],
        )
    known = {f.name for f in fields(WorkloadCase)}
    return WorkloadCase(**{k: v for k, v in doc.items() if k in known})


@st.composite
def workload_cases(
    draw, apps: Sequence[str] = APPS, max_requests: int = 14
) -> WorkloadCase:
    app = draw(st.sampled_from(tuple(apps)))
    return WorkloadCase(
        app=app,
        n=draw(st.integers(min_value=4, max_value=max_requests)),
        mix=draw(st.sampled_from(MIXES)),
        workload_seed=draw(st.integers(min_value=0, max_value=7)),
        schedule_seed=draw(st.integers(min_value=0, max_value=7)),
        concurrency=draw(st.sampled_from((1, 3, 5))),
        isolation=(
            "serializable"
            if app == "motd"
            else draw(st.sampled_from(ISOLATION_LEVELS))
        ),
    )


@st.composite
def mutation_cases(
    draw,
    apps: Sequence[str] = APPS,
    ops: Optional[Sequence[str]] = None,
    max_requests: int = 14,
) -> MutationCase:
    return MutationCase(
        workload=draw(workload_cases(apps=apps, max_requests=max_requests)),
        op=draw(st.sampled_from(tuple(ops if ops is not None else OP_NAMES))),
        mutation_seed=draw(st.integers(min_value=0, max_value=31)),
    )


@st.composite
def completeness_cases(
    draw, apps: Sequence[str] = APPS, max_requests: int = 14
) -> CompletenessCase:
    return CompletenessCase(
        workload=draw(workload_cases(apps=apps, max_requests=max_requests)),
        driver=draw(st.sampled_from(DRIVERS)),
        backend=draw(st.sampled_from(BACKENDS)),
    )
