"""The adversarial mutation surface, derived from the record schema.

The fuzzer does not hand-list attacks.  Instead it *derives* its
operators from the same metadata the storage layer uses:

* the advice wire schema -- :data:`repro.advice.codec.ADVICE_RECORD_TYPES`
  names every record section; each ``RT_<SECTION>`` constant is matched
  back to its :class:`~repro.advice.records.Advice` field by token
  overlap (``RT_HANDLER_LOG`` -> ``handler_logs``), so a new advice
  section automatically joins the surface or fails loudly;
* the field's *container shape* (``Dict[..., List[entry]]``,
  ``Dict[..., Dict[...]]``, plain mapping, sequence, scalar), read from
  the dataclass type hints, selects which generic operator kinds apply:
  **grow** (duplicate/fabricate an element), **shrink** (drop one),
  **flip** (perturb one field of one element, chosen from the entry
  dataclass's own fields), **reorder** (swap two elements), **retarget**
  (repoint a reference at a different live coordinate);
* the trace schema (:class:`~repro.trace.trace.TraceEvent`) contributes
  the trace-side operators the same way.

Each operator is classed **guaranteed** (the audit *must* reject: the
mutation provably changes what a correct server could have done) or
**opportunistic** (the mutation may be semantically neutral -- e.g.
renaming a grouping tag, reordering independent write-order entries --
so acceptance is not an escape).  The classification is the fuzzer's
oracle: a guaranteed mutation that ACCEPTs is an audit soundness bug.
"""

from __future__ import annotations

import copy
import dataclasses
import random
import typing
from typing import Callable, Dict, List, Optional, Tuple

from repro.advice import codec as advice_codec
from repro.advice.records import TX_GET, TX_PUT, Advice
from repro.core.ids import HandlerId, TxId
from repro.errors import KarousosError
from repro.store.kv import IsolationLevel
from repro.trace.trace import RESP, Trace, TraceEvent


class MutationNotApplicable(LookupError):
    """This operator has no target in the given run (e.g. shrink on an
    empty section).  Mirrors :class:`repro.attacks.AttackNotApplicable`
    so drivers can treat both surfaces uniformly."""


Pair = Tuple[Trace, Advice]
MutateFn = Callable[[random.Random, Trace, Advice], Pair]


@dataclasses.dataclass(frozen=True)
class MutationOp:
    """One schema-derived mutation operator."""

    name: str
    section: str  # advice field name, or "trace"
    kind: str  # grow | shrink | flip | reorder | retarget
    fn: MutateFn
    # Static soundness class; ``guarantee_if`` refines it per-advice
    # (e.g. tx_windows mutations only bite under SNAPSHOT isolation).
    guaranteed: bool = False
    guarantee_if: Optional[Callable[[Advice], bool]] = None

    def is_guaranteed(self, advice: Advice) -> bool:
        if self.guarantee_if is not None:
            return self.guarantee_if(advice)
        return self.guaranteed

    def apply(self, rng: random.Random, trace: Trace, advice: Advice) -> Pair:
        """Apply to deep copies; raise :class:`MutationNotApplicable`
        when the mutation would be a no-op (so every surviving case is a
        *real* mutation, never a vacuous pass)."""
        mutated_trace, mutated_advice = self.fn(rng, trace, copy.deepcopy(advice))
        if mutated_trace == trace and mutated_advice == advice:
            raise MutationNotApplicable(f"{self.name}: pair unchanged")
        return mutated_trace, mutated_advice


# -- schema reflection ---------------------------------------------------------


def advice_sections() -> Dict[int, str]:
    """Map every advice record type to its Advice field, by reflecting
    the codec's ``RT_*`` constants against the dataclass schema.  The
    meta record's one semantic field is the isolation level."""
    rt_names = {
        value: name
        for name, value in vars(advice_codec).items()
        if name.startswith("RT_") and isinstance(value, int)
    }
    fields = [f.name for f in dataclasses.fields(Advice)]
    sections: Dict[int, str] = {}
    for rtype in advice_codec.ADVICE_RECORD_TYPES:
        token = rt_names[rtype][len("RT_"):].lower()
        if token == "meta":
            sections[rtype] = "isolation_level"
            continue
        sections[rtype] = _match_field(token, fields)
    return sections


def _match_field(token: str, fields: List[str]) -> str:
    """``handler_log`` -> ``handler_logs``: the record name's tokens must
    all appear in the field name (singular/plural-insensitive)."""
    want = {part.rstrip("s") for part in token.split("_")}
    for name in sorted(fields):
        have = {part.rstrip("s") for part in name.split("_")}
        if want <= have:
            return name
    raise KarousosError(f"advice record {token!r} matches no Advice field")


def _field_shape(field_name: str) -> str:
    """Container shape from the Advice type hints."""
    hints = typing.get_type_hints(Advice)
    hint = hints[field_name]
    origin = typing.get_origin(hint)
    if origin is dict:
        value_type = typing.get_args(hint)[1]
        value_origin = typing.get_origin(value_type)
        if value_origin is list:
            return "keyed-log"
        if value_origin is dict:
            return "keyed-map"
        return "mapping"
    if origin is list:
        return "sequence"
    return "scalar"


# -- generic value perturbation ---------------------------------------------


def perturb(rng: random.Random, value: object) -> object:
    """A different value of (roughly) the same shape."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1 + rng.randrange(3)
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, str):
        return value + "~"
    if isinstance(value, IsolationLevel):
        others = [m for m in IsolationLevel if m is not value]
        return rng.choice(others)
    if isinstance(value, HandlerId):
        return dataclasses.replace(value, function_id=value.function_id + "~")
    if isinstance(value, TxId):
        return dataclasses.replace(value, opnum=value.opnum + 1000)
    if isinstance(value, tuple):
        if not value:
            return ("phantom",)
        i = rng.randrange(len(value))
        return value[:i] + (perturb(rng, value[i]),) + value[i + 1:]
    if isinstance(value, dict):
        if not value:
            return {"phantom": 1}
        key = rng.choice(sorted(value, key=repr))
        return {**value, key: perturb(rng, value[key])}
    if value is None:
        return 0
    return ("mutated", repr(value))


def _pick_key(rng: random.Random, mapping: dict, nonempty: bool = False):
    keys = [
        k for k in sorted(mapping, key=repr) if not nonempty or len(mapping[k])
    ]
    if not keys:
        raise MutationNotApplicable("section has no (non-empty) keys")
    return rng.choice(keys)


def _flip_entry_field(
    rng: random.Random, entry: object, allowed: Optional[List[str]] = None
) -> object:
    """Perturb one dataclass field of a log entry, chosen from the
    entry's own schema (restricted to ``allowed`` when given)."""
    names = [f.name for f in dataclasses.fields(entry)]
    if allowed is not None:
        names = [n for n in names if n in allowed]
    if not names:
        raise MutationNotApplicable("entry has no mutable fields")
    name = rng.choice(names)
    return dataclasses.replace(entry, **{name: perturb(rng, getattr(entry, name))})


# -- per-shape operator builders --------------------------------------------


def _keyed_log_ops(section: str) -> List[MutationOp]:
    """Dict-of-list sections: handler_logs, tx_logs."""
    is_tx = section == "tx_logs"

    def _target(rng, advice):
        logs = getattr(advice, section)
        key = _pick_key(rng, logs, nonempty=True)
        return logs, key, list(logs[key])

    def shrink(rng, trace, advice):
        logs, key, log = _target(rng, advice)
        log.pop(rng.randrange(len(log)))
        logs[key] = log
        return trace, advice

    def grow(rng, trace, advice):
        logs, key, log = _target(rng, advice)
        i = rng.randrange(len(log))
        log.insert(i, log[i])
        logs[key] = log
        return trace, advice

    def flip(rng, trace, advice):
        logs, key, log = _target(rng, advice)
        if is_tx:
            # Only data rows are flipped (start/commit/abort markers carry
            # no checked payload); a GET's dictating reference is excluded
            # -- repointing it *can* be value-preserving, which would
            # break the guarantee (retarget covers it, opportunistically).
            rows = [
                i for i, e in enumerate(log) if e.optype in (TX_GET, TX_PUT)
            ]
            if not rows:
                raise MutationNotApplicable("no GET/PUT rows to flip")
            i = rng.choice(rows)
            allowed = ["hid", "opnum", "optype", "key"]
            if log[i].optype == TX_PUT:
                allowed.append("opcontents")
            log[i] = _flip_entry_field(rng, log[i], allowed)
        else:
            i = rng.randrange(len(log))
            log[i] = _flip_entry_field(rng, log[i])
        logs[key] = log
        return trace, advice

    def reorder(rng, trace, advice):
        logs, key, log = _target(rng, advice)
        if len(log) < 2:
            raise MutationNotApplicable("log too short to reorder")
        i = rng.randrange(len(log) - 1)
        log[i], log[i + 1] = log[i + 1], log[i]
        logs[key] = log
        return trace, advice

    return [
        MutationOp(f"shrink:{section}", section, "shrink", shrink, guaranteed=True),
        MutationOp(f"grow:{section}", section, "grow", grow, guaranteed=True),
        MutationOp(f"flip:{section}", section, "flip", flip, guaranteed=True),
        # Reordering sibling tx ops shifts every logged within-transaction
        # index, which re-execution pins exactly; handler-log order is
        # merely an alleged schedule, so its reorders may legally accept.
        MutationOp(
            f"reorder:{section}", section, "reorder", reorder, guaranteed=is_tx
        ),
    ]


def _keyed_map_ops(section: str) -> List[MutationOp]:
    """Dict-of-dict sections: variable_logs."""

    def _target(rng, advice):
        logs = getattr(advice, section)
        key = _pick_key(rng, logs, nonempty=True)
        return logs, key, dict(logs[key])

    def shrink(rng, trace, advice):
        logs, key, log = _target(rng, advice)
        victim = rng.choice(sorted(log, key=repr))
        del log[victim]
        logs[key] = log
        return trace, advice

    def grow(rng, trace, advice):
        # Fabricate an entry at coordinates re-execution never reaches:
        # it can never be consumed, so it must be flagged as dangling.
        logs, key, log = _target(rng, advice)
        src = rng.choice(sorted(log, key=repr))
        rid, hid, opnum = src
        log[(rid, hid, opnum + 1000)] = log[src]
        logs[key] = log
        return trace, advice

    def flip(rng, trace, advice):
        # Restricted to write values: simulate-and-check compares every
        # logged write against re-execution, so this is always caught.
        # (Read entries carry no checked value; their prec is retarget's
        # business.)
        logs, key, log = _target(rng, advice)
        writes = [
            k for k in sorted(log, key=repr) if log[k].access == "write"
        ]
        if not writes:
            raise MutationNotApplicable("variable has no logged writes")
        victim = rng.choice(writes)
        entry = log[victim]
        log[victim] = dataclasses.replace(entry, value=perturb(rng, entry.value))
        logs[key] = log
        return trace, advice

    def retarget(rng, trace, advice):
        logs, key, log = _target(rng, advice)
        reads = [k for k in sorted(log, key=repr) if log[k].access == "read"]
        if not reads:
            raise MutationNotApplicable("variable has no logged reads")
        victim = rng.choice(reads)
        writes = [
            k
            for k in sorted(log, key=repr)
            if log[k].access == "write" and k != log[victim].prec
        ]
        if not writes:
            raise MutationNotApplicable("no alternative dictating write")
        log[victim] = dataclasses.replace(log[victim], prec=rng.choice(writes))
        logs[key] = log
        return trace, advice

    return [
        # Dropping a log entry can legally accept: an unlogged read may
        # still be fed by the R-preceding write the log claimed anyway.
        MutationOp(f"shrink:{section}", section, "shrink", shrink),
        MutationOp(f"grow:{section}", section, "grow", grow, guaranteed=True),
        MutationOp(f"flip:{section}", section, "flip", flip, guaranteed=True),
        # Repointing a read at a different write may feed the same value.
        MutationOp(f"retarget:{section}", section, "retarget", retarget),
    ]


def _sequence_ops(section: str) -> List[MutationOp]:
    """List sections: write_order."""

    def _target(rng, advice):
        seq = list(getattr(advice, section))
        if not seq:
            raise MutationNotApplicable(f"{section} is empty")
        return seq

    def shrink(rng, trace, advice):
        seq = _target(rng, advice)
        seq.pop(rng.randrange(len(seq)))
        setattr(advice, section, seq)
        return trace, advice

    def grow(rng, trace, advice):
        seq = _target(rng, advice)
        i = rng.randrange(len(seq))
        seq.insert(i, seq[i])
        setattr(advice, section, seq)
        return trace, advice

    def flip(rng, trace, advice):
        seq = _target(rng, advice)
        i = rng.randrange(len(seq))
        seq[i] = perturb(rng, seq[i])
        setattr(advice, section, seq)
        return trace, advice

    def reorder(rng, trace, advice):
        seq = _target(rng, advice)
        if len(seq) < 2:
            raise MutationNotApplicable(f"{section} too short to reorder")
        i = rng.randrange(len(seq) - 1)
        seq[i], seq[i + 1] = seq[i + 1], seq[i]
        setattr(advice, section, seq)
        return trace, advice

    return [
        MutationOp(f"shrink:{section}", section, "shrink", shrink, guaranteed=True),
        MutationOp(f"grow:{section}", section, "grow", grow, guaranteed=True),
        MutationOp(f"flip:{section}", section, "flip", flip, guaranteed=True),
        # Swapping entries of *different* keys leaves every per-key
        # order unchanged -- legally acceptable.
        MutationOp(f"reorder:{section}", section, "reorder", reorder),
    ]


def _mapping_ops(section: str) -> List[MutationOp]:
    """Flat mapping sections: tags, response_emitted_by, opcounts,
    nondet, tx_windows."""
    # Which mutations the audit provably catches varies per section; the
    # shape is generic, the oracle is not.
    shrink_guaranteed = section in ("tags", "response_emitted_by", "opcounts",
                                    "nondet")
    flip_guaranteed = section in ("response_emitted_by", "opcounts")
    grow_guaranteed = section in ("tags", "opcounts")
    retarget_guaranteed = section in ("response_emitted_by", "opcounts")
    snapshot_only = (
        (lambda advice: advice.isolation_level is IsolationLevel.SNAPSHOT)
        if section == "tx_windows"
        else None
    )

    def _target(rng, advice):
        mapping = getattr(advice, section)
        key = _pick_key(rng, mapping)
        return mapping, key

    def shrink(rng, trace, advice):
        mapping, key = _target(rng, advice)
        del mapping[key]
        return trace, advice

    def flip(rng, trace, advice):
        mapping, key = _target(rng, advice)
        mapping[key] = perturb(rng, mapping[key])
        return trace, advice

    def grow(rng, trace, advice):
        mapping, key = _target(rng, advice)
        mapping[perturb(rng, key)] = mapping[key]
        return trace, advice

    def retarget(rng, trace, advice):
        mapping, key = _target(rng, advice)
        others = [k for k in sorted(mapping, key=repr) if k != key]
        if not others:
            raise MutationNotApplicable(f"{section} has a single entry")
        other = rng.choice(others)
        mapping[key], mapping[other] = mapping[other], mapping[key]
        return trace, advice

    return [
        MutationOp(f"shrink:{section}", section, "shrink", shrink,
                   guaranteed=shrink_guaranteed, guarantee_if=snapshot_only),
        MutationOp(f"flip:{section}", section, "flip", flip,
                   guaranteed=flip_guaranteed),
        MutationOp(f"grow:{section}", section, "grow", grow,
                   guaranteed=grow_guaranteed),
        MutationOp(f"retarget:{section}", section, "retarget", retarget,
                   guaranteed=retarget_guaranteed),
    ]


def _scalar_ops(section: str) -> List[MutationOp]:
    """Scalar sections: isolation_level."""

    def flip(rng, trace, advice):
        setattr(advice, section, perturb(rng, getattr(advice, section)))
        return trace, advice

    # Claiming a *weaker* level than delivered is not a lie, so flips
    # may legitimately accept.
    return [MutationOp(f"flip:{section}", section, "flip", flip)]


_SHAPE_BUILDERS = {
    "keyed-log": _keyed_log_ops,
    "keyed-map": _keyed_map_ops,
    "sequence": _sequence_ops,
    "mapping": _mapping_ops,
    "scalar": _scalar_ops,
}


# -- trace-side operators ------------------------------------------------------


def _trace_ops() -> List[MutationOp]:
    def _responses(trace):
        idxs = [i for i, e in enumerate(trace.events) if e.kind == RESP]
        if not idxs:
            raise MutationNotApplicable("trace has no responses")
        return idxs

    def flip(rng, trace, advice):
        events = list(trace.events)
        i = rng.choice(_responses(trace))
        event = events[i]
        events[i] = TraceEvent(event.kind, event.rid, perturb(rng, event.data))
        return Trace(events, frozen=True), advice

    def shrink(rng, trace, advice):
        events = list(trace.events)
        events.pop(rng.choice(_responses(trace)))
        return Trace(events, frozen=True), advice

    def grow(rng, trace, advice):
        events = list(trace.events)
        i = rng.choice(_responses(trace))
        events.insert(i, events[i])
        return Trace(events, frozen=True), advice

    def reorder(rng, trace, advice):
        events = list(trace.events)
        if len(events) < 2:
            raise MutationNotApplicable("trace too short to reorder")
        i = rng.randrange(len(events) - 1)
        events[i], events[i + 1] = events[i + 1], events[i]
        return Trace(events, frozen=True), advice

    return [
        MutationOp("flip:trace", "trace", "flip", flip, guaranteed=True),
        MutationOp("shrink:trace", "trace", "shrink", shrink, guaranteed=True),
        MutationOp("grow:trace", "trace", "grow", grow, guaranteed=True),
        # The collector's order is ground truth, but a *different* legal
        # order is still an order some correct server could have served.
        MutationOp("reorder:trace", "trace", "reorder", reorder),
    ]


def mutation_surface() -> Tuple[MutationOp, ...]:
    """Every operator, advice sections first (schema order), then trace."""
    ops: List[MutationOp] = []
    for rtype, field_name in sorted(advice_sections().items()):
        ops.extend(_SHAPE_BUILDERS[_field_shape(field_name)](field_name))
    ops.extend(_trace_ops())
    return tuple(ops)


def guaranteed_ops(advice: Advice) -> Tuple[MutationOp, ...]:
    return tuple(op for op in mutation_surface() if op.is_guaranteed(advice))
