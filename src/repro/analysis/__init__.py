"""Static analysis of applications (paper section 1, limitations).

The paper's implementation requires developers to annotate loggable
variables by hand and notes the burden "could be lifted by fully
automating annotation using a static analyzer".  This package provides
that analyzer for applications written against the handler-context API.
"""

from repro.analysis.annotate import (
    AnnotationReport,
    VariableUsage,
    analyze_app,
    suggest_annotations,
)

__all__ = [
    "AnnotationReport",
    "VariableUsage",
    "analyze_app",
    "suggest_annotations",
]
