"""Static analysis of applications (paper section 1, limitations).

The paper's implementation requires developers to annotate loggable
variables by hand and notes the burden "could be lifted by fully
automating annotation using a static analyzer".  This package provides
that analyzer for applications written against the handler-context API,
plus the instrumentation-completeness linter that verifies an app is
valid "transpiler output" (rules R1-R5) and the trace-differential
crosscheck that validates the analyzer itself against an observed
execution.
"""

from repro.analysis.annotate import (
    AnnotationReport,
    VariableUsage,
    analyze_app,
    suggest_annotations,
)
from repro.analysis.crosscheck import (
    CrosscheckResult,
    ObservedFootprint,
    crosscheck_app,
    observed_app,
)
from repro.analysis.lint import (
    HandlerSummary,
    lint_app,
    predict_footprints,
)
from repro.analysis.report import ERROR, WARN, LintReport, Violation

__all__ = [
    "AnnotationReport",
    "VariableUsage",
    "analyze_app",
    "suggest_annotations",
    "lint_app",
    "predict_footprints",
    "HandlerSummary",
    "LintReport",
    "Violation",
    "ERROR",
    "WARN",
    "crosscheck_app",
    "observed_app",
    "CrosscheckResult",
    "ObservedFootprint",
]
