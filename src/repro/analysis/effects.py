"""Symbolic per-handler effect analysis and the static conflict matrix.

:func:`~repro.analysis.lint.predict_footprints` predicts *concrete*
operation sets (which variables, which events).  This module extends the
same interprocedural walk to **symbolic** read/write effect summaries:

* program variables split into reads, *blind* writes (``ctx.write``) and
  atomic read-modify-writes (``ctx.update``) -- the distinction the
  merge-order and conflict analyses depend on;
* transactional store keys abstracted into :class:`KeySym` values --
  constant keys, route-parameter-derived keys within a statically-known
  *family* (the ``"page:" + title`` shape, recognised by proving the key
  helper is a pure string composition), and computed-key top (⊤, an
  unbounded footprint);
* per-route *closures*: the set of handler functions a request can
  transitively activate (transaction callbacks plus statically-known
  event registrations), with the callback's payload-derived keys
  substituted by what the parent ``tx_get`` actually passes.

On top of the summaries sit three consumers:

* a **conflict matrix / commutativity relation** between route pairs:
  two routes conflict exactly when one blind-writes a variable the other
  touches (or either footprint is unbounded); atomic updates commute
  (their precedence chains are advice-ordered) and store keys are
  transaction-protected, so update-heavy apps partition cleanly;
* lint rules **R6-R9** (blind write-write pairs, SNAPSHOT write-skew
  candidates, unprotected read-modify-write, footprint widening),
  reported through the existing :class:`~repro.analysis.report.LintReport`;
* :class:`StaticHints`, the runtime-facing view: the parallel driver
  pre-partitions statically-disjoint groups and the dedup layer skips
  digesting statically-uncacheable routes and restricts digests to the
  statically-relevant variable set.

Everything here is *advisory* for verdicts (the canonical merge makes any
partition verdict-identical; dedup restriction is gated by the crosscheck
soundness property) but the soundness of the *summaries* themselves is
load-bearing for the crosscheck gate: an observed effect the summary
missed fails CI (:mod:`repro.analysis.crosscheck`).

The machine-readable form is the ``repro.effects/1`` schema
(:meth:`AppEffects.to_dict`), surfaced by ``repro analyze``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.ctxutil import (
    CtxSlot,
    ParsedFunction,
    call_argument,
    collect_helper_calls,
    context_names,
    context_params,
    ctx_method_call,
    literal_str,
    parse_function,
)
from repro.analysis.dataflow import TaintEnv
from repro.analysis.report import ERROR, WARN, Violation
from repro.analysis.rules import HandlerInfo, check_r2, check_r3
from repro.kem.program import AppSpec

EFFECTS_SPEC = "repro.effects/1"

#: Source-location triple ``(file, line, col)``.
Site = Tuple[str, int, int]

KIND_CONST = "const"
KIND_PARAM = "param"
KIND_COMPUTED = "computed"
KIND_PAYLOAD = "payload"

#: Internal evaluation markers, never stored in a summary: the callback
#: payload parameter itself, its ``extra`` sub-dictionary, and the
#: request-inputs dictionary of a request handler.
_KIND_PAYLOAD_ROOT = "payload-root"
_KIND_EXTRA_ROOT = "extra-root"
_KIND_REQ_ROOT = "req-root"


@dataclass(frozen=True, order=True)
class KeySym:
    """One symbolic store key.

    ``prefix`` is a statically-proven constant prefix of every concrete
    key this symbol stands for; ``exact`` means the prefix *is* the key.
    An empty prefix with kind ``computed`` is ⊤ -- the analysis cannot
    bound the key at all.  ``payload`` kinds are placeholders for values
    the parent activation passed through a ``tx_get`` payload; they are
    substituted away during route composition (``field`` says which
    payload slot: ``"key"``, ``"extra:<name>"``, or ``""`` for the whole
    envelope).
    """

    kind: str
    prefix: str
    exact: bool
    source: str
    field: str = ""

    @property
    def unbounded(self) -> bool:
        """⊤: no static bound on the keyspace this symbol can touch."""
        return self.kind == KIND_COMPUTED and self.prefix == ""

    def covers(self, key: str) -> bool:
        """Could this symbol denote the concrete ``key``?"""
        if self.kind == KIND_PAYLOAD:
            # Unsubstituted payload symbol: conservatively unbounded.
            return True
        if self.exact:
            return key == self.prefix
        return key.startswith(self.prefix)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "prefix": self.prefix,
            "exact": self.exact,
            "source": self.source,
        }
        if self.field:
            out["field"] = self.field
        return out


#: The ⊤ symbol: a key about which nothing is statically known.
TOP = KeySym(kind=KIND_COMPUTED, prefix="", exact=False, source="<computed>")

Syms = FrozenSet[KeySym]

_TOP_SET: Syms = frozenset({TOP})


def any_covers(syms: Iterable[KeySym], key: str) -> bool:
    return any(sym.covers(key) for sym in syms)


# -- pure key helpers ---------------------------------------------------------


#: Keyed by ``id(fn)`` but storing ``fn`` itself in the value: the pinned
#: reference keeps the function alive, so a recycled ``id`` after garbage
#: collection can never inherit a stale prefix (the identity check below
#: catches the mismatch and re-analyzes).
_HELPER_CACHE: Dict[int, Tuple[Any, Optional[str]]] = {}


def _fold_key_expr(node: ast.expr, param: str) -> Optional[Tuple[str, bool]]:
    """``(prefix, saw_param)`` of a pure string composition, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return (node.value, False)
    if isinstance(node, ast.Name):
        if node.id == param:
            return ("", True)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _fold_key_expr(node.left, param)
        right = _fold_key_expr(node.right, param)
        if left is None or right is None:
            return None
        pl, sl = left
        pr, sr = right
        if sl:
            return (pl, True)
        return (pl + pr, sr)
    return None


def key_helper_prefix(fn: Any) -> Optional[str]:
    """The constant key-family prefix of a pure key helper, or ``None``.

    A *pure key helper* is a single-parameter function whose body is one
    ``return`` of a string composition over constants and the parameter
    (``return "page:" + title``).  For such a helper ``f``,
    ``f(x) == prefix + x`` for every ``x`` -- so applying it to any
    argument symbol yields a key in a statically-known family.
    """
    cached = _HELPER_CACHE.get(id(fn))
    if cached is not None and cached[0] is fn:
        return cached[1]
    result: Optional[str] = None
    parsed = parse_function(fn)
    if parsed is not None:
        func_def = parsed.func_def
        params = [a.arg for a in func_def.args.posonlyargs + func_def.args.args]
        if (
            len(params) == 1
            and not func_def.args.kwonlyargs
            and len(func_def.body) == 1
            and isinstance(func_def.body[0], ast.Return)
            and func_def.body[0].value is not None
        ):
            folded = _fold_key_expr(func_def.body[0].value, params[0])
            if folded is not None and folded[1]:
                result = folded[0]
    _HELPER_CACHE[id(fn)] = (fn, result)
    return result


# -- effect summaries ---------------------------------------------------------


@dataclass(frozen=True)
class GetEdge:
    """One ``ctx.tx_get`` site: what the named callback will receive."""

    callback: str  # literal callback fid ("" when dynamic)
    keys: Syms
    extra: Tuple[Tuple[str, Syms], ...]  # literal extra-dict field symbols
    site: Site

    def extra_field(self, name: str) -> Optional[Syms]:
        for fname, syms in self.extra:
            if fname == name:
                return syms
        return None


@dataclass(frozen=True)
class KVSite:
    """One store-key use, for diagnostics (R9) and JSON output."""

    op: str  # "tx_get" | "tx_put"
    sym: KeySym
    site: Site


@dataclass
class EffectSummary:
    """Symbolic effect summary of one handler, helpers merged in."""

    fid: str
    var_reads: Set[str] = field(default_factory=set)
    var_writes: Set[str] = field(default_factory=set)  # blind ctx.write
    var_updates: Set[str] = field(default_factory=set)  # atomic RMW
    dynamic_vars: bool = False
    kv_reads: Set[KeySym] = field(default_factory=set)
    kv_writes: Set[KeySym] = field(default_factory=set)
    kv_sites: List[KVSite] = field(default_factory=list)
    get_edges: List[GetEdge] = field(default_factory=list)
    emits: Set[str] = field(default_factory=set)
    dynamic_emits: bool = False
    registers: Set[Tuple[str, str]] = field(default_factory=set)
    unregisters: Set[Tuple[str, str]] = field(default_factory=set)
    dynamic_registrations: bool = False
    tx_callbacks: Set[str] = field(default_factory=set)
    dynamic_callbacks: bool = False
    tx_ops: Set[str] = field(default_factory=set)
    responds: bool = False
    branch_sites: int = 0
    control_sites: int = 0
    nondet_sites: int = 0
    opaque: bool = False  # source unavailable: predict nothing
    read_sites: Dict[str, Site] = field(default_factory=dict)
    write_sites: Dict[str, Site] = field(default_factory=dict)
    update_sites: Dict[str, Site] = field(default_factory=dict)
    uncacheable: List[str] = field(default_factory=list)

    def merge(self, other: "EffectSummary") -> None:
        self.var_reads |= other.var_reads
        self.var_writes |= other.var_writes
        self.var_updates |= other.var_updates
        self.dynamic_vars |= other.dynamic_vars
        self.kv_reads |= other.kv_reads
        self.kv_writes |= other.kv_writes
        self.kv_sites.extend(other.kv_sites)
        self.get_edges.extend(other.get_edges)
        self.emits |= other.emits
        self.dynamic_emits |= other.dynamic_emits
        self.registers |= other.registers
        self.unregisters |= other.unregisters
        self.dynamic_registrations |= other.dynamic_registrations
        self.tx_callbacks |= other.tx_callbacks
        self.dynamic_callbacks |= other.dynamic_callbacks
        self.tx_ops |= other.tx_ops
        self.responds |= other.responds
        self.branch_sites += other.branch_sites
        self.control_sites += other.control_sites
        self.nondet_sites += other.nondet_sites
        self.opaque |= other.opaque
        for var, site in other.read_sites.items():
            self.read_sites.setdefault(var, site)
        for var, site in other.write_sites.items():
            self.write_sites.setdefault(var, site)
        for var, site in other.update_sites.items():
            self.update_sites.setdefault(var, site)
        for reason in other.uncacheable:
            if reason not in self.uncacheable:
                self.uncacheable.append(reason)

    @property
    def cacheable(self) -> bool:
        return not self.uncacheable and not self.opaque

    def all_vars(self) -> Set[str]:
        return self.var_reads | self.var_writes | self.var_updates

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fid": self.fid,
            "var_reads": sorted(self.var_reads),
            "var_writes": sorted(self.var_writes),
            "var_updates": sorted(self.var_updates),
            "dynamic_vars": self.dynamic_vars,
            "kv_reads": [s.to_dict() for s in sorted(self.kv_reads)],
            "kv_writes": [s.to_dict() for s in sorted(self.kv_writes)],
            "emits": sorted(self.emits),
            "registers": sorted(map(list, self.registers)),
            "unregisters": sorted(map(list, self.unregisters)),
            "tx_callbacks": sorted(self.tx_callbacks),
            "tx_ops": sorted(self.tx_ops),
            "responds": self.responds,
            "branch_sites": self.branch_sites,
            "control_sites": self.control_sites,
            "nondet_sites": self.nondet_sites,
            "opaque": self.opaque,
            "cacheable": self.cacheable,
            "uncacheable": list(self.uncacheable),
        }


# -- the symbolic walker ------------------------------------------------------


class _SymbolicWalker:
    """One handler function's symbolic evaluation.

    Flow-insensitive over names (assignments *union* into the
    environment, so a name bound differently on two branches keeps both
    symbol sets -- conservative for the soundness gate) and
    syntax-directed over expressions: every ``ctx`` operation is recorded
    exactly once, with its key arguments evaluated in the current
    environment.  Lambdas are per-slot pure code and are not descended
    into (their keys surface as ⊤).
    """

    def __init__(
        self,
        summary: EffectSummary,
        parsed: ParsedFunction,
        ctx_names: Set[str],
        fn: Any,
        is_request_handler: bool,
    ) -> None:
        self.summary = summary
        self.parsed = parsed
        self.ctx_names = ctx_names
        self.fn = fn
        self.env: Dict[str, Syms] = {}
        self.dicts: Dict[str, Dict[str, Syms]] = {}
        # Per-node memo: the walk visits each expression once, except that
        # ctx-method calls evaluate every argument up front *and* the
        # branch logic re-evaluates the slots it consumes.  Memoising on
        # node identity keeps each effect recorded exactly once (the tree
        # is pinned by ``parsed``, so ids are stable for the walk).
        self._evaluated: Dict[int, Syms] = {}
        params = [
            a.arg
            for a in parsed.func_def.args.posonlyargs + parsed.func_def.args.args
        ]
        data_params = [p for p in params if p not in ctx_names]
        root_kind = _KIND_REQ_ROOT if is_request_handler else _KIND_PAYLOAD_ROOT
        for p in data_params:
            self.env[p] = frozenset({KeySym(root_kind, "", False, p, field="")})

    def _site(self, node: ast.AST) -> Site:
        return (
            self.parsed.filename,
            self.parsed.abs_line(node),
            getattr(node, "col_offset", 0),
        )

    # -- environment ----------------------------------------------------------

    def _bind(self, name: str, syms: Syms) -> None:
        self.env[name] = self.env.get(name, frozenset()) | syms

    # -- expression evaluation -------------------------------------------------

    def eval(self, node: Optional[ast.expr]) -> Syms:
        if node is None:
            return _TOP_SET
        cached = self._evaluated.get(id(node))
        if cached is not None:
            return cached
        syms = self._eval_inner(node)
        self._evaluated[id(node)] = syms
        return syms

    def _eval_inner(self, node: ast.expr) -> Syms:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                return frozenset(
                    {KeySym(KIND_CONST, node.value, True, repr(node.value))}
                )
            return _TOP_SET
        if isinstance(node, ast.Name):
            if node.id in self.dicts:
                # A dict literal used as a value: union of its members.
                union: Set[KeySym] = set()
                for syms in self.dicts[node.id].values():
                    union |= syms
                return frozenset(union) or _TOP_SET
            return self.env.get(node.id, _TOP_SET)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return self._eval_concat(node)
        if isinstance(node, ast.JoinedStr):
            return self._eval_fstring(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.Lambda,)):
            # Per-slot pure code: not descended into.
            return _TOP_SET
        if isinstance(node, ast.Dict):
            # Anonymous dict literal (e.g. a tx_get extra argument):
            # evaluate members for effect recording; the value itself is
            # handled at the use site.
            for key in node.keys:
                if key is not None:
                    self.eval(key)
            for value in node.values:
                self.eval(value)
            return _TOP_SET
        if isinstance(node, ast.NamedExpr):
            syms = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self._bind(node.target.id, syms)
            return syms
        # Default: evaluate children for effect recording, result is ⊤.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return _TOP_SET

    def _eval_subscript(self, node: ast.Subscript) -> Syms:
        index = node.slice
        lit = literal_str(index) if isinstance(index, ast.expr) else None
        if isinstance(node.value, ast.Name) and node.value.id in self.dicts:
            members = self.dicts[node.value.id]
            if lit is not None and lit in members:
                return members[lit]
            union: Set[KeySym] = set()
            for syms in members.values():
                union |= syms
            return frozenset(union) or _TOP_SET
        base = self.eval(node.value)
        if isinstance(index, ast.expr) and lit is None:
            self.eval(index)
        out: Set[KeySym] = set()
        for sym in base:
            if sym.kind == _KIND_PAYLOAD_ROOT:
                if lit == "key":
                    out.add(
                        KeySym(KIND_PAYLOAD, "", False, "payload['key']", field="key")
                    )
                elif lit == "extra":
                    out.add(
                        KeySym(
                            _KIND_EXTRA_ROOT, "", False, "payload['extra']", field=""
                        )
                    )
                else:
                    out.add(TOP)
            elif sym.kind == _KIND_EXTRA_ROOT:
                if lit is not None:
                    out.add(
                        KeySym(
                            KIND_PAYLOAD,
                            "",
                            False,
                            f"payload['extra'][{lit!r}]",
                            field=f"extra:{lit}",
                        )
                    )
                else:
                    out.add(
                        KeySym(KIND_PAYLOAD, "", False, "payload['extra'][?]", field="")
                    )
            elif sym.kind == _KIND_REQ_ROOT:
                # Request-inputs subscript: a route parameter.
                name = lit if lit is not None else "?"
                out.add(KeySym(KIND_PARAM, "", False, f"req[{name!r}]"))
            else:
                out.add(TOP)
        return frozenset(out) or _TOP_SET

    def _eval_concat(self, node: ast.BinOp) -> Syms:
        left = self.eval(node.left)
        right = self.eval(node.right)
        out: Set[KeySym] = set()
        for ls in left:
            for rs in right:
                if ls.kind == KIND_CONST and ls.exact:
                    kind = rs.kind
                    if kind in (
                        _KIND_PAYLOAD_ROOT,
                        _KIND_EXTRA_ROOT,
                        _KIND_REQ_ROOT,
                        KIND_PAYLOAD,
                    ):
                        kind = KIND_COMPUTED
                    out.add(
                        KeySym(
                            kind=kind,
                            prefix=ls.prefix + rs.prefix,
                            exact=ls.exact and rs.exact and rs.kind == KIND_CONST,
                            source=f"{ls.source}+{rs.source}",
                        )
                    )
                else:
                    kind = KIND_COMPUTED if ls.kind != KIND_PARAM else KIND_PARAM
                    out.add(
                        KeySym(
                            kind=kind,
                            prefix=ls.prefix,
                            exact=False,
                            source=f"{ls.source}+...",
                        )
                    )
        return frozenset(out) or _TOP_SET

    def _eval_fstring(self, node: ast.JoinedStr) -> Syms:
        prefix = ""
        exact = True
        for part in node.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                if exact:
                    prefix += part.value
            else:
                if isinstance(part, ast.FormattedValue):
                    self.eval(part.value)
                exact = False
        if exact:
            return frozenset({KeySym(KIND_CONST, prefix, True, "f-string")})
        return frozenset({KeySym(KIND_COMPUTED, prefix, False, "f-string")})

    def _apply_helper(self, prefix: str, args: Syms, source: str) -> Syms:
        out: Set[KeySym] = set()
        for sym in args:
            if sym.kind == KIND_CONST and sym.exact:
                out.add(KeySym(KIND_CONST, prefix + sym.prefix, True, source))
            elif sym.kind == KIND_PARAM:
                out.add(KeySym(KIND_PARAM, prefix + sym.prefix, False, source))
            else:
                out.add(KeySym(KIND_COMPUTED, prefix + sym.prefix, False, source))
        return frozenset(out) or frozenset(
            {KeySym(KIND_COMPUTED, prefix, False, source)}
        )

    def _eval_call(self, node: ast.Call) -> Syms:
        method = ctx_method_call(node, self.ctx_names)
        if method is None:
            for arg in node.args:
                self.eval(arg)
            for kw in node.keywords:
                self.eval(kw.value)
            return _TOP_SET
        record = self.summary
        # Every argument of a ctx-method call is evaluated up front --
        # positional or keyword, consumed by the branch below or not --
        # so nested ctx operations (``ctx.write('v', value=ctx.read('w'))``)
        # are always recorded.  eval memoises per node, so the
        # slot-specific re-evaluation below never double-records.
        for arg in node.args:
            self.eval(arg)
        for kw in node.keywords:
            self.eval(kw.value)
        if method in ("read", "write", "update"):
            arg = call_argument(node, 0, "var_id")
            var_id = literal_str(arg) if arg is not None else None
            for extra_arg in node.args[1:]:
                self.eval(extra_arg)
            if var_id is None:
                record.dynamic_vars = True
                if arg is not None:
                    self.eval(arg)
            elif method == "read":
                record.var_reads.add(var_id)
                record.read_sites.setdefault(var_id, self._site(node))
            elif method == "write":
                record.var_writes.add(var_id)
                record.write_sites.setdefault(var_id, self._site(node))
            else:
                record.var_updates.add(var_id)
                record.update_sites.setdefault(var_id, self._site(node))
            return _TOP_SET
        if method == "apply":
            fn_arg = call_argument(node, 0, "fn")
            arg_syms = [self.eval(a) for a in node.args[1:]]
            prefix: Optional[str] = None
            source = "<apply>"
            if isinstance(fn_arg, ast.Name):
                target = getattr(self.fn, "__globals__", {}).get(fn_arg.id)
                if target is not None and callable(target):
                    prefix = key_helper_prefix(target)
                    source = f"{fn_arg.id}(...)"
            if prefix is not None and len(arg_syms) == 1:
                return self._apply_helper(prefix, arg_syms[0], source)
            return _TOP_SET
        if method == "emit":
            arg = call_argument(node, 0, "event")
            event = literal_str(arg) if arg is not None else None
            if event is None:
                record.dynamic_emits = True
            else:
                record.emits.add(event)
            payload = call_argument(node, 1, "payload")
            if payload is not None:
                self.eval(payload)
            return _TOP_SET
        if method in ("register", "unregister"):
            event_arg = call_argument(node, 0, "event")
            fid_arg = call_argument(node, 1, "function_id")
            event = literal_str(event_arg) if event_arg is not None else None
            target_fid = literal_str(fid_arg) if fid_arg is not None else None
            if event is None or target_fid is None:
                record.dynamic_registrations = True
            elif method == "register":
                record.registers.add((event, target_fid))
            else:
                record.unregisters.add((event, target_fid))
            return _TOP_SET
        if method == "tx_get":
            record.tx_ops.add("tx_get")
            key_arg = call_argument(node, 1, "key")
            keys = self.eval(key_arg) if key_arg is not None else _TOP_SET
            cb_arg = call_argument(node, 2, "callback_fid")
            callback = literal_str(cb_arg) if cb_arg is not None else None
            if callback is None:
                record.dynamic_callbacks = True
                callback = ""
            else:
                record.tx_callbacks.add(callback)
            extra_arg = call_argument(node, 3, "extra")
            extra_fields: List[Tuple[str, Syms]] = []
            if isinstance(extra_arg, ast.Dict):
                for k, v in zip(extra_arg.keys, extra_arg.values):
                    fname = literal_str(k) if k is not None else None
                    syms = self.eval(v)
                    if fname is not None:
                        extra_fields.append((fname, syms))
            elif extra_arg is not None:
                self.eval(extra_arg)
            site = self._site(node)
            record.kv_reads |= keys
            for sym in keys:
                record.kv_sites.append(KVSite("tx_get", sym, site))
            record.get_edges.append(
                GetEdge(
                    callback=callback,
                    keys=keys,
                    extra=tuple(extra_fields),
                    site=site,
                )
            )
            return _TOP_SET
        if method == "tx_put":
            record.tx_ops.add("tx_put")
            key_arg = call_argument(node, 1, "key")
            keys = self.eval(key_arg) if key_arg is not None else _TOP_SET
            value_arg = call_argument(node, 2, "value")
            if value_arg is not None:
                self.eval(value_arg)
            site = self._site(node)
            record.kv_writes |= keys
            for sym in keys:
                record.kv_sites.append(KVSite("tx_put", sym, site))
            return _TOP_SET
        if method in ("tx_start", "tx_commit", "tx_abort"):
            record.tx_ops.add(method)
            for arg in node.args:
                self.eval(arg)
            return _TOP_SET
        if method == "respond":
            record.responds = True
            for arg in node.args:
                self.eval(arg)
            return _TOP_SET
        if method == "branch":
            record.branch_sites += 1
            for arg in node.args:
                self.eval(arg)
            return _TOP_SET
        if method == "control":
            record.control_sites += 1
            for arg in node.args:
                self.eval(arg)
            return _TOP_SET
        if method == "nondet":
            record.nondet_sites += 1
            return _TOP_SET
        for arg in node.args:
            self.eval(arg)
        return _TOP_SET

    # -- statement walk --------------------------------------------------------

    def walk(self) -> None:
        self._walk_body(self.parsed.func_def.body)

    def _walk_body(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._walk_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                syms = self.eval(stmt.value)
                if isinstance(stmt.target, ast.Name):
                    self._bind(stmt.target.id, syms)
        elif isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self._bind(stmt.target.id, _TOP_SET)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self.eval(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                self._bind(stmt.target.id, _TOP_SET)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr)
            self._walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                self._walk_body(handler.body)
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise,)):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            pass  # Nested defs/classes: per-slot code, not walked.
        elif isinstance(
            stmt,
            (
                ast.Pass,
                ast.Break,
                ast.Continue,
                ast.Global,
                ast.Nonlocal,
                ast.Import,
                ast.ImportFrom,
            ),
        ):
            pass  # No expressions, no bindings the analysis tracks.
        else:
            self._walk_fallback(stmt)

    def _walk_fallback(self, stmt: ast.stmt) -> None:
        """Conservative walk of a statement form with no dedicated handler
        (``match``, ``async for``/``async with``, ``try*``, ``del``, ...).

        The summaries must over-approximate -- a silently skipped
        statement would let a ctx operation escape the effect summary and
        unsoundly narrow the dedup digest -- so every name the statement
        can bind degrades to ⊤, every embedded expression is evaluated
        (recording any ctx operations inside it), and nested statement
        bodies go back through :meth:`_walk_stmt`.
        """
        for node in ast.walk(stmt):
            name: Optional[str] = None
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                name = node.id
            elif isinstance(node, (ast.MatchAs, ast.MatchStar)):
                name = node.name
            elif isinstance(node, ast.MatchMapping):
                name = node.rest
            if name:
                members = self.dicts.pop(name, None)
                if members is not None:
                    for syms in members.values():
                        self._bind(name, syms)
                self._bind(name, _TOP_SET)
        self._walk_fallback_children(stmt)

    def _walk_fallback_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._walk_stmt(child)
            elif isinstance(child, ast.expr):
                self.eval(child)
            else:
                # Patterns, withitems, except handlers: descend through.
                self._walk_fallback_children(child)

    def _walk_assign(self, stmt: ast.Assign) -> None:
        if isinstance(stmt.value, ast.Dict):
            fields: Dict[str, Syms] = {}
            literal_keys = True
            for k, v in zip(stmt.value.keys, stmt.value.values):
                fname = literal_str(k) if k is not None else None
                syms = self.eval(v)
                if fname is None:
                    literal_keys = False
                else:
                    fields[fname] = syms
            for target in stmt.targets:
                if isinstance(target, ast.Name) and literal_keys:
                    self.dicts[target.id] = fields
            return
        syms = self.eval(stmt.value)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, syms)
            elif isinstance(target, ast.Tuple) and isinstance(stmt.value, ast.Tuple):
                if len(target.elts) == len(stmt.value.elts):
                    for tgt, val in zip(target.elts, stmt.value.elts):
                        if isinstance(tgt, ast.Name):
                            self._bind(tgt.id, self.eval(val))


# -- per-handler summarisation -------------------------------------------------


def _summarize_effects(
    fid: str,
    fn: Any,
    ctx_slot: CtxSlot,
    is_request_handler: bool,
    seen: Set[int],
) -> EffectSummary:
    if id(fn) in seen:
        return EffectSummary(fid=fid)
    seen.add(id(fn))
    parsed = parse_function(fn)
    if parsed is None:
        return EffectSummary(fid=fid, opaque=True)
    ctx_param_names = context_params(parsed.func_def, position=ctx_slot)
    ctx_names = context_names(parsed.func_def, ctx_param_names)
    summary = EffectSummary(fid=fid)
    walker = _SymbolicWalker(summary, parsed, ctx_names, fn, is_request_handler)
    walker.walk()
    for helper_name, helper_slot in collect_helper_calls(
        parsed.func_def, ctx_names
    ).items():
        helper = getattr(fn, "__globals__", {}).get(helper_name)
        if helper is None or not callable(helper):
            summary.opaque = True
            continue
        summary.merge(
            _summarize_effects(
                f"{fid}>{helper_name}", helper, helper_slot, False, seen
            )
        )
    summary.fid = fid
    return summary


def _cacheability_reasons(fid: str, fn: Any) -> List[str]:
    """Why this handler is statically uncacheable (empty = cacheable).

    A handler is uncacheable when re-executing it from a digested slice
    could observe state the digest does not pin: unwrapped
    nondeterminism (R3 errors) or module-level side channels (R2 errors)
    anywhere in its helper closure, or source the analysis cannot see.
    """
    reasons: List[str] = []
    seen: Set[int] = set()

    def visit(label: str, target: Any, slot: CtxSlot) -> None:
        if id(target) in seen:
            return
        seen.add(id(target))
        parsed = parse_function(target)
        if parsed is None:
            reasons.append(f"{label}: source unavailable")
            return
        params = [
            a.arg
            for a in parsed.func_def.args.posonlyargs + parsed.func_def.args.args
        ]
        ctx_param_names = context_params(parsed.func_def, position=slot)
        ctx_names = context_names(parsed.func_def, ctx_param_names)
        seed = [p for p in params if p not in ctx_param_names]
        info = HandlerInfo(
            fid=label,
            fn=target,
            parsed=parsed,
            ctx_names=ctx_names,
            taint=TaintEnv(parsed.func_def, ctx_names, seed_tainted=seed),
            is_request_handler=False,
        )
        for violation in check_r3(info):
            if violation.severity == ERROR:
                reasons.append(f"{label}: unwrapped nondeterminism ({violation.message})")
        for violation in check_r2(info):
            if violation.severity == ERROR:
                reasons.append(f"{label}: side-channel state ({violation.message})")
        for helper_name, helper_slot in collect_helper_calls(
            parsed.func_def, ctx_names
        ).items():
            helper = getattr(target, "__globals__", {}).get(helper_name)
            if helper is None or not callable(helper):
                continue
            visit(f"{label}>{helper_name}", helper, helper_slot)

    visit(fid, fn, 0)
    return reasons


# -- route composition --------------------------------------------------------


@dataclass
class RouteEffect:
    """A route's transitive effect: root handler plus everything its
    activation tree can reach, payload symbols substituted."""

    route: str
    root_fid: str
    closure: Tuple[str, ...]
    widened: bool  # dynamic callbacks/registrations forced closure = all
    effect: EffectSummary

    def to_dict(self) -> Dict[str, Any]:
        return {
            "route": self.route,
            "root": self.root_fid,
            "closure": list(self.closure),
            "widened": self.widened,
            "effect": self.effect.to_dict(),
        }


def _substitute_payload(
    summary: EffectSummary, edges: List[GetEdge]
) -> EffectSummary:
    """``summary`` with payload symbols replaced by what parents pass."""

    def subst(sym: KeySym) -> Syms:
        if sym.kind != KIND_PAYLOAD:
            return frozenset({sym})
        if not edges:
            return frozenset(
                {KeySym(KIND_COMPUTED, "", False, f"{sym.source} (no parent edge)")}
            )
        out: Set[KeySym] = set()
        for edge in edges:
            if sym.field == "key":
                out |= edge.keys
            elif sym.field.startswith("extra:"):
                fname = sym.field[len("extra:"):]
                got = edge.extra_field(fname)
                if got is None:
                    out |= edge.keys
                    for _fname, syms in edge.extra:
                        out |= syms
                else:
                    out |= got
            else:
                out |= edge.keys
                for _fname, syms in edge.extra:
                    out |= syms
        return frozenset(out) or _TOP_SET

    def subst_all(syms: Set[KeySym]) -> Set[KeySym]:
        out: Set[KeySym] = set()
        for sym in syms:
            out |= subst(sym)
        return out

    clone = EffectSummary(fid=summary.fid)
    clone.merge(summary)
    clone.kv_reads = subst_all(summary.kv_reads)
    clone.kv_writes = subst_all(summary.kv_writes)
    clone.kv_sites = [
        KVSite(site.op, sub, site.site)
        for site in summary.kv_sites
        for sub in subst(site.sym)
    ]
    return clone


def _registration_map(
    init_registrations: Iterable[Tuple[str, str]],
    summaries: Dict[str, EffectSummary],
) -> Dict[str, Set[str]]:
    events: Dict[str, Set[str]] = {}
    for event, fid in init_registrations:
        events.setdefault(event, set()).add(fid)
    for summary in summaries.values():
        for event, fid in summary.registers:
            events.setdefault(event, set()).add(fid)
    return events


def _route_closure(
    root_fid: str,
    summaries: Dict[str, EffectSummary],
    registrations: Dict[str, Set[str]],
) -> Tuple[Set[str], bool]:
    closure: Set[str] = set()
    widened = False
    frontier = [root_fid]
    while frontier:
        fid = frontier.pop()
        if fid in closure or fid not in summaries:
            continue
        closure.add(fid)
        summary = summaries[fid]
        if summary.dynamic_callbacks or summary.dynamic_registrations or summary.dynamic_emits:
            widened = True
        for callback in summary.tx_callbacks:
            frontier.append(callback)
        for event in summary.emits:
            for listener in registrations.get(event, ()):
                frontier.append(listener)
    if widened:
        closure = set(summaries)
    return closure, widened


# -- conflicts ----------------------------------------------------------------


@dataclass(frozen=True)
class RouteConflict:
    """Whether two routes' activations can conflict, and why.

    ``commutes`` is the complement: all shared state is touched only
    through atomic updates (advice-ordered precedence chains) and
    transaction-protected store keys, so re-execution groups of the two
    routes merge identically in any order.
    """

    a: str
    b: str
    reasons: Tuple[str, ...]

    @property
    def conflicts(self) -> bool:
        return bool(self.reasons)

    @property
    def commutes(self) -> bool:
        return not self.reasons

    def to_dict(self) -> Dict[str, Any]:
        return {
            "a": self.a,
            "b": self.b,
            "conflicts": self.conflicts,
            "commutes": self.commutes,
            "reasons": list(self.reasons),
        }


def _route_conflict(a: RouteEffect, b: RouteEffect) -> RouteConflict:
    reasons: List[str] = []
    ea, eb = a.effect, b.effect
    if ea.dynamic_vars:
        reasons.append(f"route {a.route!r} has an unbounded variable footprint")
    if eb.dynamic_vars and a.route != b.route:
        reasons.append(f"route {b.route!r} has an unbounded variable footprint")
    if ea.opaque:
        reasons.append(f"route {a.route!r} reaches a handler without source")
    if eb.opaque and a.route != b.route:
        reasons.append(f"route {b.route!r} reaches a handler without source")
    if not reasons:
        for var in sorted(
            ea.var_writes & (eb.var_writes | eb.var_reads | eb.var_updates)
        ):
            reasons.append(f"blind write of {var!r} in {a.route!r} vs access in {b.route!r}")
        if a.route != b.route:
            for var in sorted(
                eb.var_writes & (ea.var_writes | ea.var_reads | ea.var_updates)
            ):
                reasons.append(
                    f"blind write of {var!r} in {b.route!r} vs access in {a.route!r}"
                )
    return RouteConflict(a=a.route, b=b.route, reasons=tuple(reasons))


# -- the app-level analysis ---------------------------------------------------


@dataclass
class AppEffects:
    """Everything the effect analysis knows about one application."""

    app_name: str
    handlers: Dict[str, EffectSummary]
    routes: Dict[str, RouteEffect]
    conflicts: Dict[Tuple[str, str], RouteConflict]

    def conflict(self, route_a: str, route_b: str) -> Optional[RouteConflict]:
        key = (min(route_a, route_b), max(route_a, route_b))
        return self.conflicts.get(key)

    def uncacheable_handlers(self) -> Dict[str, List[str]]:
        return {
            fid: list(summary.uncacheable) + (["source unavailable"] if summary.opaque else [])
            for fid, summary in sorted(self.handlers.items())
            if not summary.cacheable
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": EFFECTS_SPEC,
            "app": self.app_name,
            "handlers": {
                fid: summary.to_dict()
                for fid, summary in sorted(self.handlers.items())
            },
            "routes": {
                route: eff.to_dict() for route, eff in sorted(self.routes.items())
            },
            "conflicts": [
                self.conflicts[key].to_dict() for key in sorted(self.conflicts)
            ],
            "uncacheable": self.uncacheable_handlers(),
        }


def analyze_effects(app: AppSpec) -> AppEffects:
    """Run the symbolic effect analysis over every handler of ``app``."""
    init_ctx = app.run_init()
    request_fids = {
        fid
        for event, fid in init_ctx.global_handlers
        if event.startswith("request/")
    }
    summaries: Dict[str, EffectSummary] = {}
    for fid, fn in sorted(app.functions.items()):
        summary = _summarize_effects(fid, fn, 0, fid in request_fids, set())
        summary.uncacheable = _cacheability_reasons(fid, fn)
        summaries[fid] = summary

    registrations = _registration_map(init_ctx.global_handlers, summaries)
    routes: Dict[str, RouteEffect] = {}
    for event, root_fid in sorted(init_ctx.global_handlers):
        if not event.startswith("request/"):
            continue
        route = event[len("request/"):]
        closure, widened = _route_closure(root_fid, summaries, registrations)
        # Parent get-edges per callback, for payload substitution.
        edges_for: Dict[str, List[GetEdge]] = {}
        for fid in closure:
            for edge in summaries[fid].get_edges:
                if edge.callback:
                    edges_for.setdefault(edge.callback, []).append(edge)
        merged = EffectSummary(fid=f"route:{route}")
        for fid in sorted(closure):
            merged.merge(
                _substitute_payload(summaries[fid], edges_for.get(fid, []))
            )
        merged.fid = f"route:{route}"
        routes[route] = RouteEffect(
            route=route,
            root_fid=root_fid,
            closure=tuple(sorted(closure)),
            widened=widened,
            effect=merged,
        )

    conflicts: Dict[Tuple[str, str], RouteConflict] = {}
    names = sorted(routes)
    for i, ra in enumerate(names):
        for rb in names[i:]:
            conflicts[(ra, rb)] = _route_conflict(routes[ra], routes[rb])
    return AppEffects(
        app_name=app.name,
        handlers=summaries,
        routes=routes,
        conflicts=conflicts,
    )


# -- R6-R9 --------------------------------------------------------------------


def _site_violation(
    rule: str,
    severity: str,
    fid: str,
    site: Optional[Site],
    message: str,
) -> Violation:
    file, line, col = site if site is not None else ("<unknown>", 1, 0)
    return Violation(
        rule=rule,
        severity=severity,
        fid=fid,
        file=file,
        line=line,
        col=col,
        message=message,
    )


def _first_kv_site(effect: EffectSummary) -> Optional[Site]:
    if effect.kv_sites:
        return effect.kv_sites[0].site
    return None


def effect_violations(effects: AppEffects) -> List[Violation]:
    """The R6-R9 findings over one app's effect summaries.

    =====  ==================================================================
    R6     a variable blind-written (``ctx.write``) by two handlers (or two
           activations of one handler): the writes race with no
           advice-orderable precedence between them (ERROR)
    R7     SNAPSHOT write-skew candidate: two routes read each other's
           written key family without writing their own read set -- the
           classic r/w crossing snapshot isolation admits (WARN)
    R8     a handler reads a variable and then blind-writes it: a
           read-modify-write with no transactional protection; the atomic
           form is ``ctx.update`` (ERROR)
    R9     the static footprint widens to the whole keyspace or variable
           space (computed ⊤ key, dynamic variable id): every conflict
           and dedup decision over this handler degrades to the
           conservative fallback (WARN)
    =====  ==================================================================
    """
    out: List[Violation] = []
    fids = sorted(effects.handlers)

    # R6: blind write-write pairs (self-pairs included: two activations).
    for i, fa in enumerate(fids):
        ea = effects.handlers[fa]
        for fb in fids[i:]:
            eb = effects.handlers[fb]
            for var in sorted(ea.var_writes & eb.var_writes):
                pair = fa if fa == fb else f"{fa} and {fb}"
                out.append(
                    _site_violation(
                        "R6", ERROR, fa, ea.write_sites.get(var),
                        f"blind ctx.write of {var!r} in {pair}: concurrent "
                        "activations race with no advice-orderable precedence; "
                        "use ctx.update",
                    )
                )

    # R7: SNAPSHOT write-skew candidates over key families, route pairs.
    route_names = sorted(effects.routes)
    for i, ra in enumerate(route_names):
        A = effects.routes[ra]
        for rb in route_names[i:]:
            B = effects.routes[rb]
            a_reads = {s.prefix for s in A.effect.kv_reads if s.prefix}
            a_writes = {s.prefix for s in A.effect.kv_writes if s.prefix}
            b_reads = {s.prefix for s in B.effect.kv_reads if s.prefix}
            b_writes = {s.prefix for s in B.effect.kv_writes if s.prefix}
            for f in sorted(a_reads & b_writes):
                for g in sorted(a_writes & b_reads):
                    if f == g:
                        continue
                    if f in a_writes or g in b_writes:
                        continue  # the read set is also written: not skew
                    out.append(
                        _site_violation(
                            "R7", WARN, A.root_fid,
                            _first_kv_site(A.effect),
                            f"SNAPSHOT write-skew candidate: route {ra!r} "
                            f"reads family {f!r} and writes {g!r} while "
                            f"route {rb!r} reads {g!r} and writes {f!r}; "
                            "under snapshot isolation both commits can "
                            "succeed",
                        )
                    )

    # R8: read-then-blind-write of the same variable in one handler.
    for fid in fids:
        eff = effects.handlers[fid]
        for var in sorted(eff.var_reads & eff.var_writes):
            out.append(
                _site_violation(
                    "R8", ERROR, fid, eff.write_sites.get(var),
                    f"read-modify-write of {var!r} without tx protection: "
                    "the ctx.read and the blind ctx.write log as independent "
                    "accesses and interleave; use ctx.update",
                )
            )

    # R9: footprint widening (⊤ keys, dynamic variable ids).
    for fid in fids:
        eff = effects.handlers[fid]
        seen_sites: Set[Site] = set()
        for kv in eff.kv_sites:
            if kv.sym.unbounded and kv.site not in seen_sites:
                seen_sites.add(kv.site)
                out.append(
                    _site_violation(
                        "R9", WARN, fid, kv.site,
                        f"store key of {kv.op} is not statically bounded "
                        "(computed ⊤): the footprint widens to the whole "
                        "keyspace and disables static scheduling for this "
                        "handler",
                    )
                )
        if eff.dynamic_vars:
            out.append(
                _site_violation(
                    "R9", WARN, fid, None,
                    "variable id is not statically bounded: the footprint "
                    "widens to every program variable",
                )
            )
    return out


# -- runtime-facing hints -----------------------------------------------------


@dataclass
class StaticHints:
    """The runtime's view of the static analysis.

    Consumed by :mod:`repro.verifier.parallel` (conflict-driven wave
    pre-partitioning) and :mod:`repro.verifier.dedup` (uncacheable-route
    skip, digest read-set restriction).  Every answer degrades to the
    conservative fallback for anything the analysis could not bound.
    """

    app_name: str
    effects: AppEffects

    @classmethod
    def from_app(cls, app: AppSpec) -> "StaticHints":
        return cls(app_name=app.name, effects=analyze_effects(app))

    def conflicting(self, route_a: str, route_b: str) -> bool:
        """May activations of these routes conflict?  Unknown -> True."""
        conflict = self.effects.conflict(route_a, route_b)
        if conflict is None:
            return True
        return conflict.conflicts

    def uncacheable_routes(self) -> FrozenSet[str]:
        """Routes whose activation tree reaches an uncacheable handler."""
        out: Set[str] = set()
        for route, eff in self.effects.routes.items():
            if eff.widened or any(
                not self.effects.handlers[fid].cacheable
                for fid in eff.closure
                if fid in self.effects.handlers
            ):
                out.add(route)
        return frozenset(out)

    def relevant_vars(self, routes: Iterable[str]) -> Optional[FrozenSet[str]]:
        """The variables a group of these routes can statically touch.

        ``None`` means "no restriction" -- some route is unknown, widened,
        or has an unbounded variable footprint, so the digest must keep
        the full initial-variable state.
        """
        out: Set[str] = set()
        for route in routes:
            eff = self.effects.routes.get(route)
            if eff is None or eff.widened or eff.effect.dynamic_vars or eff.effect.opaque:
                return None
            out |= eff.effect.all_vars()
        return frozenset(out)


__all__ = [
    "EFFECTS_SPEC",
    "TOP",
    "AppEffects",
    "EffectSummary",
    "GetEdge",
    "KVSite",
    "KeySym",
    "RouteConflict",
    "RouteEffect",
    "StaticHints",
    "analyze_effects",
    "any_covers",
    "effect_violations",
    "key_helper_prefix",
]
