"""Lint findings and their presentation (text / JSON).

A :class:`Violation` pins one rule breach to an exact source coordinate;
a :class:`LintReport` aggregates them for an application together with
the per-handler footprint summaries the crosscheck layer consumes.

Severities: ``error`` marks a breach of the transpiler contract that
costs audit Completeness (section 5) -- the served execution could
diverge from what the verifier replays without the audit noticing;
``warn`` marks hazards and hygiene findings (dead emits, mutable-global
reads, unordered iteration) that deserve a look but cannot, alone,
silently defeat the audit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

ERROR = "error"
WARN = "warn"


@dataclass(frozen=True)
class Violation:
    """One rule breach at one source location."""

    rule: str  # "R1".."R9"
    severity: str  # ERROR | WARN
    fid: str  # handler (or "handler>helper") the finding belongs to
    file: str
    line: int  # absolute 1-based source line
    col: int
    message: str

    def location(self) -> str:
        return f"{self.file}:{self.line}:{self.col}"

    def sort_key(self) -> "tuple[str, int, str, int]":
        return (self.file, self.line, self.rule, self.col)


@dataclass
class LintReport:
    """All findings for one application."""

    app_name: str
    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    unparsed: List[str] = field(default_factory=list)  # fids without source

    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == ERROR]

    def warnings(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == WARN]

    def by_rule(self, rule: str) -> List[Violation]:
        return [v for v in self.violations if v.rule == rule]

    @property
    def clean(self) -> bool:
        return not self.violations

    def fails(self, fail_on: str = ERROR) -> bool:
        """Should the lint gate fail, under the given threshold?"""
        if fail_on == WARN:
            return bool(self.violations)
        return bool(self.errors())

    # -- rendering --------------------------------------------------------

    def format_text(self, crosscheck: Optional[Any] = None) -> str:
        lines: List[str] = []
        for v in sorted(self.violations, key=lambda v: (v.file, v.line, v.col)):
            lines.append(
                f"{v.location()}: {v.rule} [{v.severity}] {v.fid}: {v.message}"
            )
        for v in sorted(self.suppressed, key=lambda v: (v.file, v.line, v.col)):
            lines.append(
                f"{v.location()}: {v.rule} [suppressed] {v.fid}: {v.message}"
            )
        for fid in self.unparsed:
            lines.append(f"{fid}: source unavailable; handler not analysed")
        if crosscheck is not None:
            lines.extend(crosscheck.format_text())
        n_err, n_warn = len(self.errors()), len(self.warnings())
        verdict = "clean" if self.clean else f"{n_err} error(s), {n_warn} warning(s)"
        suffix = f" ({len(self.suppressed)} suppressed)" if self.suppressed else ""
        lines.append(f"{self.app_name}: {verdict}{suffix}")
        return "\n".join(lines)

    def to_dict(self, crosscheck: Optional[Any] = None) -> Dict[str, Any]:
        """A deterministic JSON document: violations sorted by
        (file, line, rule), with per-rule counts in the summary block, so
        two runs over the same source diff byte-identically."""
        violations = sorted(self.violations, key=Violation.sort_key)
        suppressed = sorted(self.suppressed, key=Violation.sort_key)
        counts: Dict[str, int] = {}
        for v in violations:
            counts[v.rule] = counts.get(v.rule, 0) + 1
        out: Dict[str, Any] = {
            "app": self.app_name,
            "clean": self.clean,
            "summary": {
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "suppressed": len(suppressed),
                "by_rule": counts,
            },
            "violations": [dict(v.__dict__) for v in violations],
            "suppressed": [dict(v.__dict__) for v in suppressed],
            "unparsed": sorted(self.unparsed),
        }
        if crosscheck is not None:
            out["crosscheck"] = crosscheck.to_dict()
        return out

    def format_json(self, crosscheck: Optional[Any] = None) -> str:
        return json.dumps(self.to_dict(crosscheck), indent=2, sort_keys=True)
