"""Shared context-parameter resolution for the static analyses.

Every handler function receives the instrumented operation API as a
parameter (``repro.kem.context.HandlerContext``), conventionally named
``ctx`` and passed first.  Neither convention is load-bearing: handlers
may rename the parameter, annotate it, alias it locally (``c = ctx``),
or hand it to helper functions at any argument position.  The annotation
analyzer and the instrumentation linter both need to see *through* all of
that -- a context access the analysis cannot attribute is a Completeness
hazard (section 5) -- so the resolution logic lives here, once.

The exported helpers are purely syntactic (AST-level):

* :func:`parse_function` -- source -> the function's ``ast.FunctionDef``
  plus the absolute file/line coordinates needed for diagnostics;
* :func:`context_params` -- which parameters carry the context, by
  annotation when one names a ``*Context`` type, by position otherwise;
* :func:`context_names` -- the context parameters plus every local alias
  reachable through simple assignments, to a fixpoint;
* :func:`ctx_method_call` / :func:`helper_ctx_positions` -- classify a
  ``Call`` node as a context-API operation or as a helper invocation that
  forwards the context (at any argument position).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, Union

#: A helper's context-parameter slot: a positional index or, for
#: keyword-forwarded contexts (``helper(x, ctx=c)``), the parameter name.
CtxSlot = Union[int, str]

#: Context-API method names, grouped by role.  The linter and the
#: annotation analyzer share this vocabulary.
VAR_READ_METHODS = ("read",)
VAR_WRITE_METHODS = ("write",)
VAR_UPDATE_METHODS = ("update",)
CONTROL_METHODS = ("branch", "control")
HANDLER_OP_METHODS = ("emit", "register", "unregister")
TX_METHODS = ("tx_start", "tx_get", "tx_put", "tx_commit", "tx_abort")
OTHER_METHODS = ("apply", "nondet", "respond")
ALL_CTX_METHODS = frozenset(
    VAR_READ_METHODS
    + VAR_WRITE_METHODS
    + VAR_UPDATE_METHODS
    + CONTROL_METHODS
    + HANDLER_OP_METHODS
    + TX_METHODS
    + OTHER_METHODS
)


@dataclass(frozen=True)
class ParsedFunction:
    """A function's AST plus the coordinates to map it back to source."""

    func_def: ast.FunctionDef
    filename: str
    firstline: int  # absolute line number of ``func_def`` line 1
    source_lines: Tuple[str, ...]

    def abs_line(self, node: ast.AST) -> int:
        """Absolute source line of ``node`` (for diagnostics)."""
        return self.firstline + getattr(node, "lineno", 1) - 1

    def source_line(self, abs_lineno: int) -> str:
        idx = abs_lineno - self.firstline
        if 0 <= idx < len(self.source_lines):
            return self.source_lines[idx]
        return ""


def parse_function(fn: Any) -> Optional[ParsedFunction]:
    """Parse ``fn``'s source into a :class:`ParsedFunction`.

    Returns ``None`` when the source is unavailable (C functions,
    interactively defined callables, ...) -- callers must treat that as
    "analysis impossible", never as "no accesses".
    """
    try:
        lines, firstline = inspect.getsourcelines(fn)
        source = textwrap.dedent("".join(lines))
        tree = ast.parse(source)
        filename = inspect.getsourcefile(fn) or "<unknown>"
    except (OSError, TypeError, SyntaxError):
        return None
    func_def = next(
        (
            n
            for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ),
        None,
    )
    if func_def is None:
        return None
    # ``firstline`` points at the first *source* line, which may be a
    # decorator; re-anchor on the def itself so abs_line stays exact.
    firstline = firstline + func_def.lineno - 1
    return ParsedFunction(
        func_def=func_def,
        filename=filename,
        firstline=firstline,
        source_lines=tuple(line.rstrip("\n") for line in lines[func_def.lineno - 1:]),
    )


def _positional_params(func_def: ast.FunctionDef) -> List[ast.arg]:
    return list(func_def.args.posonlyargs) + list(func_def.args.args)


def _is_context_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value
    else:
        try:
            text = ast.unparse(annotation)
        except Exception:  # pragma: no cover - malformed annotation
            return False
    tail = text.split(".")[-1]
    return tail.endswith("Context")


def context_params(func_def: ast.FunctionDef, position: CtxSlot = 0) -> List[str]:
    """Parameter names that carry the handler context.

    Annotation wins over position: a parameter annotated with a
    ``*Context`` type is the context wherever it sits.  Without an
    annotation the parameter at ``position`` (the caller's argument slot,
    0 for request/callback handlers) is assumed; a string slot names the
    parameter the caller forwarded the context into by keyword.
    """
    params = _positional_params(func_def)
    annotated = [a.arg for a in params if _is_context_annotation(a.annotation)]
    if annotated:
        return annotated
    if isinstance(position, str):
        all_params = params + list(func_def.args.kwonlyargs)
        if any(a.arg == position for a in all_params):
            return [position]
        return []
    if 0 <= position < len(params):
        return [params[position].arg]
    return []


def _alias_step(node: ast.AST, names: Set[str]) -> bool:
    """One alias-propagation step over a single statement; True if grown."""
    changed = False
    if isinstance(node, ast.Assign):
        if isinstance(node.value, ast.Name) and node.value.id in names:
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id not in names:
                    names.add(target.id)
                    changed = True
        elif isinstance(node.value, ast.NamedExpr):
            # ``c = (alias := ctx)``: the walrus case is handled below,
            # but the outer assignment also aliases once it resolves.
            inner = node.value
            if isinstance(inner.value, ast.Name) and inner.value.id in names:
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in names:
                        names.add(target.id)
                        changed = True
        elif isinstance(node.value, ast.Tuple):
            # Positional tuple unpacking: ``a, c = payload, ctx``.  Only
            # star-free, length-matched patterns propagate.
            for target in node.targets:
                if (
                    isinstance(target, ast.Tuple)
                    and len(target.elts) == len(node.value.elts)
                    and not any(isinstance(e, ast.Starred) for e in target.elts)
                ):
                    for tgt, val in zip(target.elts, node.value.elts):
                        if (
                            isinstance(tgt, ast.Name)
                            and isinstance(val, ast.Name)
                            and val.id in names
                            and tgt.id not in names
                        ):
                            names.add(tgt.id)
                            changed = True
    elif isinstance(node, ast.NamedExpr):
        # Walrus rename: ``(c := ctx)`` aliases wherever it appears.
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in names
            and isinstance(node.target, ast.Name)
            and node.target.id not in names
        ):
            names.add(node.target.id)
            changed = True
    return changed


def context_names(func_def: ast.FunctionDef, ctx_params: List[str]) -> Set[str]:
    """``ctx_params`` plus all local aliases (``c = ctx``), to a fixpoint.

    Simple ``Name = Name`` chains, walrus renames (``(c := ctx)``), and
    star-free positional tuple unpacking propagate; anything fancier
    falls out of the alias set and is instead caught dynamically by the
    crosscheck layer.
    """
    names = set(ctx_params)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func_def):
            if _alias_step(node, names):
                changed = True
    return names


def ctx_method_call(node: ast.Call, ctx_names: Set[str]) -> Optional[str]:
    """The context-API method name if ``node`` is ``<ctx>.<method>(...)``."""
    fn = node.func
    if (
        isinstance(fn, ast.Attribute)
        and isinstance(fn.value, ast.Name)
        and fn.value.id in ctx_names
    ):
        return fn.attr
    return None


def helper_ctx_positions(node: ast.Call, ctx_names: Set[str]) -> Optional[Tuple[str, CtxSlot]]:
    """Detect a helper invocation that forwards the context.

    Returns ``(helper_name, slot)`` when ``node`` is a plain-name call
    with a context name at any positional argument slot (``slot`` is the
    index) or passed by keyword (``slot`` is the keyword name); the
    interprocedural analyses follow such calls with ``slot`` identifying
    the helper's context parameter.
    """
    if not isinstance(node.func, ast.Name):
        return None
    for i, arg in enumerate(node.args):
        if isinstance(arg, ast.Name) and arg.id in ctx_names:
            return (node.func.id, i)
    for kw in node.keywords:
        if (
            kw.arg is not None
            and isinstance(kw.value, ast.Name)
            and kw.value.id in ctx_names
        ):
            return (node.func.id, kw.arg)
    return None


def iter_calls(func_def: ast.FunctionDef) -> Iterator[ast.Call]:
    """All ``Call`` nodes in ``func_def`` including inside nested lambdas."""
    for node in ast.walk(func_def):
        if isinstance(node, ast.Call):
            yield node


def resolve_global(fn: Any, dotted: str) -> Any:
    """Best-effort resolution of a dotted name through ``fn.__globals__``."""
    parts = dotted.split(".")
    obj = getattr(fn, "__globals__", {}).get(parts[0])
    for part in parts[1:]:
        if obj is None:
            return None
        obj = getattr(obj, part, None)
    return obj


def call_target_path(node: ast.Call) -> Optional[str]:
    """Dotted path of the called object, e.g. ``"random.randint"``."""
    parts: List[str] = []
    cur = node.func
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def literal_str(node: ast.expr) -> Optional[str]:
    """The value of a string-literal expression, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def call_argument(node: ast.Call, position: int, keyword: str) -> Optional[ast.expr]:
    """The argument at ``position`` or passed as ``keyword=``, if present."""
    if len(node.args) > position:
        return node.args[position]
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


class ScopedWalker(ast.NodeVisitor):
    """A visitor that does **not** descend into nested function scopes.

    Rule checkers subclass this so that code inside ``lambda``s and nested
    ``def``s -- which the re-executor runs *per request slot* (pure
    functions handed to ``ctx.apply``/``ctx.update``) -- is exempt from
    group-level control-flow discipline.  Subclasses that do want lambdas
    (e.g. the nondeterminism rule) override :meth:`visit_Lambda`.
    """

    def visit_Lambda(self, node: ast.Lambda) -> None:  # noqa: D102
        pass

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: D102
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:  # noqa: D102
        pass


def walk_scoped(func_def: ast.FunctionDef) -> Iterator[ast.AST]:
    """Yield all nodes of ``func_def``'s own scope (no lambdas/nested defs).

    The ``func_def`` node itself is not yielded.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(func_def))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def collect_helper_calls(
    func_def: ast.FunctionDef, ctx_names: Set[str]
) -> Dict[str, CtxSlot]:
    """Helper name -> context argument slot, for every forwarding call."""
    helpers: Dict[str, CtxSlot] = {}
    for call in iter_calls(func_def):
        if ctx_method_call(call, ctx_names) is not None:
            continue
        hit = helper_ctx_positions(call, ctx_names)
        if hit is not None and hit[0] not in helpers:
            helpers[hit[0]] = hit[1]
    return helpers
