"""Trace-differential crosscheck: does reality match the static analysis?

The linter's verdict is only as good as its model of the handler code.
This module closes the loop dynamically: it serves a workload through the
existing runtime and :class:`~repro.trace.collector.Collector` with every
handler wrapped in a recording proxy, projects the observed execution
onto per-handler read/write/branch/emit/tx footprints, and diffs them
against :func:`~repro.analysis.lint.predict_footprints`:

* an observed operation the static analysis did **not** predict is an
  analyzer bug -- the analysis is *unsound* for this app, and every lint
  verdict on it is suspect (these are errors and fail the gate);
* a predicted operation never observed is reported as dead or
  over-approximated instrumentation (informational: the workload may
  simply not have driven that path).

The same loop gates the symbolic effect analysis
(:mod:`repro.analysis.effects`): observed store keys must be covered by
the route's static key symbols, blind writes and atomic updates must be
predicted with the right access kind, every activated handler must lie
in its route's static closure, and every observed cross-route conflict
must appear in the static conflict matrix.  Escapes land in
``effect_unpredicted`` and fail the gate, because the parallel
pre-partitioning and dedup digest restriction trust exactly these facts.

The recording proxy wraps the live :class:`HandlerContext`, so the
observation is exactly what the server executed -- same runtime, same
scheduler, same store -- not a re-implementation of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.effects import AppEffects, analyze_effects, any_covers
from repro.analysis.lint import HandlerSummary, predict_footprints
from repro.kem.program import AppSpec
from repro.kem.scheduler import RandomScheduler
from repro.server import KarousosPolicy, run_server
from repro.store import KVStore
from repro.trace.trace import Request, Trace
from repro.workload import workload_for


@dataclass
class ObservedFootprint:
    """What one handler function actually did, across all activations."""

    fid: str
    activations: int = 0
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    updates: Set[str] = field(default_factory=set)  # atomic RMW (ctx.update)
    blind_writes: Set[str] = field(default_factory=set)  # bare ctx.write
    kv_reads: Set[str] = field(default_factory=set)  # concrete tx_get keys
    kv_writes: Set[str] = field(default_factory=set)  # concrete tx_put keys
    rids: Set[str] = field(default_factory=set)  # requests that reached us
    emits: Set[str] = field(default_factory=set)
    registers: Set[Tuple[str, str]] = field(default_factory=set)
    unregisters: Set[Tuple[str, str]] = field(default_factory=set)
    tx_callbacks: Set[str] = field(default_factory=set)
    tx_ops: Set[str] = field(default_factory=set)
    responds: bool = False
    branches: int = 0
    controls: int = 0
    nondets: int = 0


class FootprintRecorder:
    """Collects one :class:`ObservedFootprint` per function id."""

    def __init__(self) -> None:
        self.footprints: Dict[str, ObservedFootprint] = {}

    def for_fid(self, fid: str) -> ObservedFootprint:
        if fid not in self.footprints:
            self.footprints[fid] = ObservedFootprint(fid)
        return self.footprints[fid]


class RecordingContext:
    """A transparent proxy over the live handler context.

    Every operation is forwarded unchanged; the footprint is recorded on
    the way through.  Unknown attributes delegate, so the proxy keeps
    working if the context API grows.
    """

    def __init__(self, inner: Any, footprint: ObservedFootprint):
        self._inner = inner
        self._fp = footprint

    @property
    def rid(self) -> str:
        return self._inner.rid

    def read(self, var_id: str) -> Any:
        self._fp.reads.add(var_id)
        return self._inner.read(var_id)

    def write(self, var_id: str, value: Any) -> Any:
        self._fp.writes.add(var_id)
        self._fp.blind_writes.add(var_id)
        return self._inner.write(var_id, value)

    def update(self, var_id: str, fn: Any, *args: Any) -> Any:
        self._fp.reads.add(var_id)
        self._fp.writes.add(var_id)
        self._fp.updates.add(var_id)
        return self._inner.update(var_id, fn, *args)

    def branch(self, cond: Any) -> Any:
        self._fp.branches += 1
        return self._inner.branch(cond)

    def control(self, value: Any) -> Any:
        self._fp.controls += 1
        return self._inner.control(value)

    def apply(self, fn: Any, *args: Any) -> Any:
        return self._inner.apply(fn, *args)

    def emit(self, event: str, payload: Any = None) -> Any:
        self._fp.emits.add(event)
        return self._inner.emit(event, payload)

    def register(self, event: str, function_id: str) -> Any:
        self._fp.registers.add((event, function_id))
        return self._inner.register(event, function_id)

    def unregister(self, event: str, function_id: str) -> Any:
        self._fp.unregisters.add((event, function_id))
        return self._inner.unregister(event, function_id)

    def tx_start(self) -> Any:
        self._fp.tx_ops.add("tx_start")
        return self._inner.tx_start()

    def tx_get(self, tid: Any, key: str, callback_fid: str, extra: Any = None) -> Any:
        self._fp.tx_ops.add("tx_get")
        self._fp.tx_callbacks.add(callback_fid)
        self._fp.kv_reads.add(key)
        return self._inner.tx_get(tid, key, callback_fid, extra)

    def tx_put(self, tid: Any, key: str, value: Any) -> Any:
        self._fp.tx_ops.add("tx_put")
        self._fp.kv_writes.add(key)
        return self._inner.tx_put(tid, key, value)

    def tx_commit(self, tid: Any) -> Any:
        self._fp.tx_ops.add("tx_commit")
        return self._inner.tx_commit(tid)

    def tx_abort(self, tid: Any) -> Any:
        self._fp.tx_ops.add("tx_abort")
        return self._inner.tx_abort(tid)

    def nondet(self, fn: Any) -> Any:
        self._fp.nondets += 1
        return self._inner.nondet(fn)

    def respond(self, payload: Any) -> Any:
        self._fp.responds = True
        return self._inner.respond(payload)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


def observed_app(app: AppSpec) -> Tuple[AppSpec, FootprintRecorder]:
    """``app`` with every handler wrapped in a recording proxy."""
    recorder = FootprintRecorder()

    def wrap(fid: str, fn: Any) -> Any:
        def wrapped(ctx: Any, payload: Any) -> Any:
            footprint = recorder.for_fid(fid)
            footprint.activations += 1
            footprint.rids.add(ctx.rid)
            return fn(RecordingContext(ctx, footprint), payload)

        wrapped.__name__ = f"observed_{fid}"
        return wrapped

    wrapped_functions = {fid: wrap(fid, fn) for fid, fn in app.functions.items()}
    return (
        AppSpec(name=app.name, functions=wrapped_functions, init=app.init),
        recorder,
    )


@dataclass
class CrosscheckResult:
    """The footprint diff plus the run it came from."""

    app_name: str
    requests_served: int
    unpredicted: List[str] = field(default_factory=list)  # analyzer bugs
    unobserved: List[str] = field(default_factory=list)  # dead / over-approx
    effect_unpredicted: List[str] = field(default_factory=list)  # effects bugs
    observed: Dict[str, ObservedFootprint] = field(default_factory=dict)
    predicted: Dict[str, HandlerSummary] = field(default_factory=dict)
    effects: Optional[AppEffects] = None
    trace: Optional[Trace] = None

    @property
    def sound(self) -> bool:
        """No observed operation escaped the static prediction."""
        return not self.unpredicted and not self.effect_unpredicted

    def format_text(self) -> List[str]:
        lines = [
            f"crosscheck: {self.requests_served} requests, "
            f"{len(self.observed)} handlers activated, "
            f"{len(self.unpredicted)} unpredicted event(s), "
            f"{len(self.effect_unpredicted)} unpredicted effect(s), "
            f"{len(self.unobserved)} predicted-but-unobserved site(s)"
        ]
        for item in self.unpredicted:
            lines.append(f"  UNSOUND {item}")
        for item in self.effect_unpredicted:
            lines.append(f"  UNSOUND-EFFECT {item}")
        for item in self.unobserved:
            lines.append(f"  unobserved {item}")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app_name,
            "requests": self.requests_served,
            "sound": self.sound,
            "unpredicted": list(self.unpredicted),
            "effect_unpredicted": list(self.effect_unpredicted),
            "unobserved": list(self.unobserved),
        }


def _diff_fid(
    fid: str, obs: ObservedFootprint, pred: HandlerSummary
) -> Tuple[List[str], List[str]]:
    unpredicted: List[str] = []
    unobserved: List[str] = []
    if pred.opaque:
        unpredicted.append(
            f"{fid}: executed but its source was unavailable to the analysis"
        )
        return unpredicted, unobserved

    def missing(kind: str, values: Any, dynamic_ok: bool) -> None:
        for value in sorted(values):
            if dynamic_ok:
                continue
            unpredicted.append(f"{fid}: {kind} {value!r} was not predicted")

    missing("read of", obs.reads - pred.reads, pred.dynamic_vars)
    missing("write of", obs.writes - pred.writes, pred.dynamic_vars)
    missing("emit of", obs.emits - pred.emits, pred.dynamic_emits)
    missing(
        "registration", obs.registers - pred.registers, pred.dynamic_registrations
    )
    missing(
        "unregistration", obs.unregisters - pred.unregisters,
        pred.dynamic_registrations,
    )
    missing(
        "tx callback", obs.tx_callbacks - pred.tx_callbacks, pred.dynamic_callbacks
    )
    missing("transactional op", obs.tx_ops - pred.tx_ops, False)
    if obs.responds and not pred.responds:
        unpredicted.append(f"{fid}: responded but no ctx.respond site was predicted")
    if obs.branches and not pred.branch_sites:
        unpredicted.append(f"{fid}: issued branches but no ctx.branch site was predicted")
    if obs.controls and not pred.control_sites:
        unpredicted.append(f"{fid}: issued controls but no ctx.control site was predicted")
    if obs.nondets and not pred.nondet_sites:
        unpredicted.append(f"{fid}: used nondet but no ctx.nondet site was predicted")

    for var in sorted(pred.reads - obs.reads):
        unobserved.append(f"{fid}: predicted read of {var!r} never observed")
    for var in sorted(pred.writes - obs.writes):
        unobserved.append(f"{fid}: predicted write of {var!r} never observed")
    for event in sorted(pred.emits - obs.emits):
        unobserved.append(f"{fid}: predicted emit of {event!r} never observed")
    for op in sorted(pred.tx_ops - obs.tx_ops):
        unobserved.append(f"{fid}: predicted {op} never observed")
    for callback in sorted(pred.tx_callbacks - obs.tx_callbacks):
        unobserved.append(
            f"{fid}: predicted tx callback {callback!r} never observed"
        )
    if pred.responds and not obs.responds:
        unobserved.append(f"{fid}: predicted ctx.respond never observed")
    return unpredicted, unobserved


def _check_effects(
    effects: AppEffects,
    footprints: Dict[str, ObservedFootprint],
    route_of: Dict[str, str],
) -> List[str]:
    """Observed effects the symbolic summaries failed to predict.

    Gate checks, each the dynamic complement of a static claim:

    * every activated handler lies in the closure of the route that
      reached it (the closure is what conflict/dedup decisions range over);
    * every concrete store key read/written by a handler is covered by a
      key symbol of some route the handler runs under (exact match for
      constant symbols, prefix match for families, anything for ⊤);
    * every blind write / atomic update is predicted with the right kind
      (the conflict predicate distinguishes them);
    * every observed variable read lies in the summary's variable set --
      :meth:`~repro.analysis.effects.StaticHints.relevant_vars` restricts
      the dedup digest to exactly that set, so a read escape is a wrong
      digest, not just imprecision;
    * every *observed* cross-route conflict is in the static conflict
      matrix -- implied by the per-effect checks for a monotone predicate,
      but checked explicitly so a predicate bug cannot hide behind them.
    """
    problems: List[str] = []
    handler_routes: Dict[str, Set[str]] = {}
    for fid, obs in sorted(footprints.items()):
        routes = {route_of[rid] for rid in obs.rids if rid in route_of}
        handler_routes[fid] = routes
        for route in sorted(routes):
            eff = effects.routes.get(route)
            if eff is None:
                problems.append(
                    f"{fid}: activated by unknown route {route!r}"
                )
            elif fid not in eff.closure:
                problems.append(
                    f"{fid}: activated by route {route!r} but not in its "
                    "static closure"
                )

    for fid, obs in sorted(footprints.items()):
        summary = effects.handlers.get(fid)
        if summary is None or summary.opaque:
            continue  # already reported by the footprint diff
        route_effects = [
            effects.routes[r] for r in sorted(handler_routes.get(fid, set()))
            if r in effects.routes
        ]
        for key in sorted(obs.kv_reads):
            if not any(
                any_covers(r.effect.kv_reads, key) for r in route_effects
            ):
                problems.append(
                    f"{fid}: tx_get of key {key!r} not covered by any "
                    "static key symbol"
                )
        for key in sorted(obs.kv_writes):
            if not any(
                any_covers(r.effect.kv_writes, key) for r in route_effects
            ):
                problems.append(
                    f"{fid}: tx_put of key {key!r} not covered by any "
                    "static key symbol"
                )
        if not summary.dynamic_vars:
            # relevant_vars() narrows the dedup digest to the summary's
            # variable set, so an observed read outside it is a digest
            # soundness escape, not just imprecision.
            for var in sorted(obs.reads - summary.all_vars()):
                problems.append(
                    f"{fid}: ctx.read of {var!r} not covered by the "
                    "effect summary's variable set"
                )
            for var in sorted(obs.blind_writes - summary.var_writes):
                problems.append(
                    f"{fid}: blind write of {var!r} not predicted as a "
                    "blind write"
                )
            for var in sorted(obs.updates - summary.var_updates):
                problems.append(
                    f"{fid}: atomic update of {var!r} not predicted as an "
                    "update"
                )

    # Observed conflicts vs the static matrix.  Attribute each handler's
    # accesses to every route that activated it -- the same
    # over-approximation the static side uses, so the comparison cannot
    # false-fail.
    route_obs: Dict[str, ObservedFootprint] = {}
    for fid, obs in footprints.items():
        for route in handler_routes.get(fid, set()):
            agg = route_obs.setdefault(route, ObservedFootprint(route))
            agg.reads |= obs.reads
            agg.updates |= obs.updates
            agg.blind_writes |= obs.blind_writes
    names = sorted(route_obs)
    for i, ra in enumerate(names):
        A = route_obs[ra]
        for rb in names[i:]:
            B = route_obs[rb]
            observed_conflict_vars = sorted(
                (A.blind_writes & (B.blind_writes | B.reads | B.updates))
                | (B.blind_writes & (A.reads | A.updates))
            )
            if not observed_conflict_vars:
                continue
            conflict = effects.conflict(ra, rb)
            if conflict is None or conflict.commutes:
                problems.append(
                    f"routes {ra!r} and {rb!r}: observed conflict on "
                    f"{observed_conflict_vars} but the static matrix says "
                    "they commute"
                )
    return problems


def crosscheck_app(
    app: AppSpec,
    requests: Optional[List[Request]] = None,
    n_requests: int = 80,
    mix: str = "mixed",
    seed: int = 0,
    concurrency: int = 8,
) -> CrosscheckResult:
    """Serve a workload with recording handlers and diff the footprints.

    ``requests`` overrides the generated workload (the app's name must be
    a known workload name otherwise).  The store is attached exactly when
    the static prediction says any handler issues transactional ops.
    """
    predicted = predict_footprints(app)
    effects = analyze_effects(app)
    if requests is None:
        requests = workload_for(app.name, n_requests, mix=mix, seed=seed)
    wrapped, recorder = observed_app(app)
    needs_store = any(p.tx_ops or p.opaque for p in predicted.values())
    run = run_server(
        wrapped,
        requests,
        KarousosPolicy(),
        store=KVStore() if needs_store else None,
        scheduler=RandomScheduler(seed=seed),
        concurrency=concurrency,
    )
    result = CrosscheckResult(
        app_name=app.name,
        requests_served=len(requests),
        observed=recorder.footprints,
        predicted=predicted,
        effects=effects,
        trace=run.trace,
    )
    route_of = {req.rid: req.route for req in requests}
    result.effect_unpredicted.extend(
        _check_effects(effects, recorder.footprints, route_of)
    )
    for fid, obs in sorted(recorder.footprints.items()):
        pred = predicted.get(fid)
        if pred is None:  # cannot happen via AppSpec, but stay defensive
            result.unpredicted.append(f"{fid}: executed but unknown to the analysis")
            continue
        unpredicted, unobserved = _diff_fid(fid, obs, pred)
        result.unpredicted.extend(unpredicted)
        result.unobserved.extend(unobserved)
    for fid in sorted(set(predicted) - set(recorder.footprints)):
        result.unobserved.append(
            f"{fid}: handler never activated by this workload"
        )
    return result
