"""Trace-differential crosscheck: does reality match the static analysis?

The linter's verdict is only as good as its model of the handler code.
This module closes the loop dynamically: it serves a workload through the
existing runtime and :class:`~repro.trace.collector.Collector` with every
handler wrapped in a recording proxy, projects the observed execution
onto per-handler read/write/branch/emit/tx footprints, and diffs them
against :func:`~repro.analysis.lint.predict_footprints`:

* an observed operation the static analysis did **not** predict is an
  analyzer bug -- the analysis is *unsound* for this app, and every lint
  verdict on it is suspect (these are errors and fail the gate);
* a predicted operation never observed is reported as dead or
  over-approximated instrumentation (informational: the workload may
  simply not have driven that path).

The recording proxy wraps the live :class:`HandlerContext`, so the
observation is exactly what the server executed -- same runtime, same
scheduler, same store -- not a re-implementation of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lint import HandlerSummary, predict_footprints
from repro.kem.program import AppSpec
from repro.kem.scheduler import RandomScheduler
from repro.server import KarousosPolicy, run_server
from repro.store import KVStore
from repro.trace.trace import Request, Trace
from repro.workload import workload_for


@dataclass
class ObservedFootprint:
    """What one handler function actually did, across all activations."""

    fid: str
    activations: int = 0
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    emits: Set[str] = field(default_factory=set)
    registers: Set[Tuple[str, str]] = field(default_factory=set)
    unregisters: Set[Tuple[str, str]] = field(default_factory=set)
    tx_callbacks: Set[str] = field(default_factory=set)
    tx_ops: Set[str] = field(default_factory=set)
    responds: bool = False
    branches: int = 0
    controls: int = 0
    nondets: int = 0


class FootprintRecorder:
    """Collects one :class:`ObservedFootprint` per function id."""

    def __init__(self) -> None:
        self.footprints: Dict[str, ObservedFootprint] = {}

    def for_fid(self, fid: str) -> ObservedFootprint:
        if fid not in self.footprints:
            self.footprints[fid] = ObservedFootprint(fid)
        return self.footprints[fid]


class RecordingContext:
    """A transparent proxy over the live handler context.

    Every operation is forwarded unchanged; the footprint is recorded on
    the way through.  Unknown attributes delegate, so the proxy keeps
    working if the context API grows.
    """

    def __init__(self, inner, footprint: ObservedFootprint):
        self._inner = inner
        self._fp = footprint

    @property
    def rid(self) -> str:
        return self._inner.rid

    def read(self, var_id):
        self._fp.reads.add(var_id)
        return self._inner.read(var_id)

    def write(self, var_id, value):
        self._fp.writes.add(var_id)
        return self._inner.write(var_id, value)

    def update(self, var_id, fn, *args):
        self._fp.reads.add(var_id)
        self._fp.writes.add(var_id)
        return self._inner.update(var_id, fn, *args)

    def branch(self, cond):
        self._fp.branches += 1
        return self._inner.branch(cond)

    def control(self, value):
        self._fp.controls += 1
        return self._inner.control(value)

    def apply(self, fn, *args):
        return self._inner.apply(fn, *args)

    def emit(self, event, payload=None):
        self._fp.emits.add(event)
        return self._inner.emit(event, payload)

    def register(self, event, function_id):
        self._fp.registers.add((event, function_id))
        return self._inner.register(event, function_id)

    def unregister(self, event, function_id):
        self._fp.unregisters.add((event, function_id))
        return self._inner.unregister(event, function_id)

    def tx_start(self):
        self._fp.tx_ops.add("tx_start")
        return self._inner.tx_start()

    def tx_get(self, tid, key, callback_fid, extra=None):
        self._fp.tx_ops.add("tx_get")
        self._fp.tx_callbacks.add(callback_fid)
        return self._inner.tx_get(tid, key, callback_fid, extra)

    def tx_put(self, tid, key, value):
        self._fp.tx_ops.add("tx_put")
        return self._inner.tx_put(tid, key, value)

    def tx_commit(self, tid):
        self._fp.tx_ops.add("tx_commit")
        return self._inner.tx_commit(tid)

    def tx_abort(self, tid):
        self._fp.tx_ops.add("tx_abort")
        return self._inner.tx_abort(tid)

    def nondet(self, fn):
        self._fp.nondets += 1
        return self._inner.nondet(fn)

    def respond(self, payload):
        self._fp.responds = True
        return self._inner.respond(payload)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def observed_app(app: AppSpec) -> Tuple[AppSpec, FootprintRecorder]:
    """``app`` with every handler wrapped in a recording proxy."""
    recorder = FootprintRecorder()

    def wrap(fid: str, fn):
        def wrapped(ctx, payload):
            footprint = recorder.for_fid(fid)
            footprint.activations += 1
            return fn(RecordingContext(ctx, footprint), payload)

        wrapped.__name__ = f"observed_{fid}"
        return wrapped

    wrapped_functions = {fid: wrap(fid, fn) for fid, fn in app.functions.items()}
    return (
        AppSpec(name=app.name, functions=wrapped_functions, init=app.init),
        recorder,
    )


@dataclass
class CrosscheckResult:
    """The footprint diff plus the run it came from."""

    app_name: str
    requests_served: int
    unpredicted: List[str] = field(default_factory=list)  # analyzer bugs
    unobserved: List[str] = field(default_factory=list)  # dead / over-approx
    observed: Dict[str, ObservedFootprint] = field(default_factory=dict)
    predicted: Dict[str, HandlerSummary] = field(default_factory=dict)
    trace: Optional[Trace] = None

    @property
    def sound(self) -> bool:
        """No observed operation escaped the static prediction."""
        return not self.unpredicted

    def format_text(self) -> List[str]:
        lines = [
            f"crosscheck: {self.requests_served} requests, "
            f"{len(self.observed)} handlers activated, "
            f"{len(self.unpredicted)} unpredicted event(s), "
            f"{len(self.unobserved)} predicted-but-unobserved site(s)"
        ]
        for item in self.unpredicted:
            lines.append(f"  UNSOUND {item}")
        for item in self.unobserved:
            lines.append(f"  unobserved {item}")
        return lines

    def to_dict(self) -> Dict:
        return {
            "app": self.app_name,
            "requests": self.requests_served,
            "sound": self.sound,
            "unpredicted": list(self.unpredicted),
            "unobserved": list(self.unobserved),
        }


def _diff_fid(
    fid: str, obs: ObservedFootprint, pred: HandlerSummary
) -> Tuple[List[str], List[str]]:
    unpredicted: List[str] = []
    unobserved: List[str] = []
    if pred.opaque:
        unpredicted.append(
            f"{fid}: executed but its source was unavailable to the analysis"
        )
        return unpredicted, unobserved

    def missing(kind: str, values, dynamic_ok: bool) -> None:
        for value in sorted(values):
            if dynamic_ok:
                continue
            unpredicted.append(f"{fid}: {kind} {value!r} was not predicted")

    missing("read of", obs.reads - pred.reads, pred.dynamic_vars)
    missing("write of", obs.writes - pred.writes, pred.dynamic_vars)
    missing("emit of", obs.emits - pred.emits, pred.dynamic_emits)
    missing(
        "registration", obs.registers - pred.registers, pred.dynamic_registrations
    )
    missing(
        "unregistration", obs.unregisters - pred.unregisters,
        pred.dynamic_registrations,
    )
    missing(
        "tx callback", obs.tx_callbacks - pred.tx_callbacks, pred.dynamic_callbacks
    )
    missing("transactional op", obs.tx_ops - pred.tx_ops, False)
    if obs.responds and not pred.responds:
        unpredicted.append(f"{fid}: responded but no ctx.respond site was predicted")
    if obs.branches and not pred.branch_sites:
        unpredicted.append(f"{fid}: issued branches but no ctx.branch site was predicted")
    if obs.controls and not pred.control_sites:
        unpredicted.append(f"{fid}: issued controls but no ctx.control site was predicted")
    if obs.nondets and not pred.nondet_sites:
        unpredicted.append(f"{fid}: used nondet but no ctx.nondet site was predicted")

    for var in sorted(pred.reads - obs.reads):
        unobserved.append(f"{fid}: predicted read of {var!r} never observed")
    for var in sorted(pred.writes - obs.writes):
        unobserved.append(f"{fid}: predicted write of {var!r} never observed")
    for event in sorted(pred.emits - obs.emits):
        unobserved.append(f"{fid}: predicted emit of {event!r} never observed")
    for op in sorted(pred.tx_ops - obs.tx_ops):
        unobserved.append(f"{fid}: predicted {op} never observed")
    for callback in sorted(pred.tx_callbacks - obs.tx_callbacks):
        unobserved.append(
            f"{fid}: predicted tx callback {callback!r} never observed"
        )
    if pred.responds and not obs.responds:
        unobserved.append(f"{fid}: predicted ctx.respond never observed")
    return unpredicted, unobserved


def crosscheck_app(
    app: AppSpec,
    requests: Optional[List[Request]] = None,
    n_requests: int = 80,
    mix: str = "mixed",
    seed: int = 0,
    concurrency: int = 8,
) -> CrosscheckResult:
    """Serve a workload with recording handlers and diff the footprints.

    ``requests`` overrides the generated workload (the app's name must be
    a known workload name otherwise).  The store is attached exactly when
    the static prediction says any handler issues transactional ops.
    """
    predicted = predict_footprints(app)
    if requests is None:
        requests = workload_for(app.name, n_requests, mix=mix, seed=seed)
    wrapped, recorder = observed_app(app)
    needs_store = any(p.tx_ops or p.opaque for p in predicted.values())
    run = run_server(
        wrapped,
        requests,
        KarousosPolicy(),
        store=KVStore() if needs_store else None,
        scheduler=RandomScheduler(seed=seed),
        concurrency=concurrency,
    )
    result = CrosscheckResult(
        app_name=app.name,
        requests_served=len(requests),
        observed=recorder.footprints,
        predicted=predicted,
        trace=run.trace,
    )
    for fid, obs in sorted(recorder.footprints.items()):
        pred = predicted.get(fid)
        if pred is None:  # cannot happen via AppSpec, but stay defensive
            result.unpredicted.append(f"{fid}: executed but unknown to the analysis")
            continue
        unpredicted, unobserved = _diff_fid(fid, obs, pred)
        result.unpredicted.extend(unpredicted)
        result.unobserved.extend(unobserved)
    for fid in sorted(set(predicted) - set(recorder.footprints)):
        result.unobserved.append(
            f"{fid}: handler never activated by this workload"
        )
    return result
