"""Intra-handler dataflow: taint from logged/replayed values (rule R1).

During grouped re-execution every per-request value is a
:class:`~repro.core.multivalue.Multivalue`: request payloads, results of
``ctx.read``/``ctx.update``, transactional statuses, ``ctx.nondet``
results, and ``ctx.rid``.  Control flow that depends on such a value
*must* be laundered through ``ctx.branch``/``ctx.control`` -- that is
what folds the decision into the control-flow digest and what lets the
verifier detect divergence (Figure 18 line 32).  A raw ``if`` on a
multivalue would instead branch on the truthiness of the wrapper object:
silently wrong, and invisible to the audit -- a Completeness failure.

This module computes, per handler function, which local names are
*tainted* (may hold per-request data at group level).  The analysis is

* **flow-insensitive**: a name tainted by any assignment is treated as
  tainted everywhere -- sound, and precise enough in practice because the
  handler style keeps raw data and laundered conditions in separate
  names;
* **scope-local**: lambdas and nested ``def``s are opaque -- code inside
  them runs per request slot (``ctx.apply``/``ctx.update`` semantics) and
  is exempt from group-level discipline;
* a **fixpoint** over assignments, tuple unpacking, augmented
  assignments, ``for`` targets, ``with ... as`` bindings, and walrus
  expressions.

It also tracks *transaction handles* (names bound to ``ctx.tx_start()``
results) for rule R4's escape check.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from repro.analysis.ctxutil import (
    ctx_method_call,
    walk_scoped,
)

#: Context methods whose results are per-request data (taint sources).
TAINT_SOURCE_METHODS = frozenset(
    {"read", "update", "nondet", "tx_put", "tx_commit", "tx_get"}
)
#: Context methods that launder a value into the control-flow digest.
SANITIZER_METHODS = frozenset({"branch", "control"})


class TaintEnv:
    """Taint facts for one function scope.

    ``ctx_names`` are the context parameter and its aliases;
    ``seed_tainted`` are parameter names assumed tainted on entry (the
    payload parameter of a handler, every non-context parameter of a
    helper analysed conservatively).
    """

    def __init__(
        self,
        func_def: ast.FunctionDef,
        ctx_names: Set[str],
        seed_tainted: Iterable[str] = (),
    ):
        self.func_def = func_def
        self.ctx_names = set(ctx_names)
        self.tainted: Set[str] = set(seed_tainted)
        self.tx_handles: Set[str] = set()
        self._solve()

    # -- fixpoint ---------------------------------------------------------

    def _solve(self) -> None:
        for _ in range(len(self.tainted) + sum(1 for _ in walk_scoped(self.func_def)) + 2):
            if not self._pass():
                return

    def _pass(self) -> bool:
        changed = False
        for node in walk_scoped(self.func_def):
            if isinstance(node, ast.Assign):
                if self.is_tainted(node.value):
                    for target in node.targets:
                        changed |= self._taint_target(target)
                if self._is_tx_start(node.value):
                    for target in node.targets:
                        changed |= self._mark_handle(target)
                # Handle aliasing: ``t2 = tid``.
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in self.tx_handles
                ):
                    for target in node.targets:
                        changed |= self._mark_handle(target)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if self.is_tainted(node.value):
                    changed |= self._taint_target(node.target)
                if self._is_tx_start(node.value):
                    changed |= self._mark_handle(node.target)
            elif isinstance(node, ast.AugAssign):
                if self.is_tainted(node.value):
                    changed |= self._taint_target(node.target)
            elif isinstance(node, ast.For):
                if self.is_tainted(node.iter):
                    changed |= self._taint_target(node.target)
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None and self.is_tainted(
                    node.context_expr
                ):
                    changed |= self._taint_target(node.optional_vars)
            elif isinstance(node, ast.NamedExpr):
                if self.is_tainted(node.value):
                    changed |= self._taint_target(node.target)
                if self._is_tx_start(node.value):
                    changed |= self._mark_handle(node.target)
        return changed

    def _taint_target(self, target: ast.expr) -> bool:
        changed = False
        for name_node in ast.walk(target):
            if isinstance(name_node, ast.Name) and name_node.id not in self.tainted:
                self.tainted.add(name_node.id)
                changed = True
        return changed

    def _mark_handle(self, target: ast.expr) -> bool:
        if isinstance(target, ast.Name) and target.id not in self.tx_handles:
            self.tx_handles.add(target.id)
            return True
        return False

    def _is_tx_start(self, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Call)
            and ctx_method_call(expr, self.ctx_names) == "tx_start"
        )

    # -- queries ----------------------------------------------------------

    def is_tainted(self, expr: Optional[ast.expr]) -> bool:
        """Conservative: may ``expr`` evaluate to per-request data?"""
        if expr is None:
            return False
        if isinstance(expr, ast.Constant):
            return False
        if isinstance(expr, (ast.Lambda, ast.FunctionDef)):
            return False
        if isinstance(expr, ast.Name):
            return expr.id in self.tainted
        if isinstance(expr, ast.Attribute):
            # ctx.rid is per-request; other ctx attributes are API surface.
            if isinstance(expr.value, ast.Name) and expr.value.id in self.ctx_names:
                return expr.attr == "rid"
            return self.is_tainted(expr.value)
        if isinstance(expr, ast.Call):
            method = ctx_method_call(expr, self.ctx_names)
            if method is not None:
                if method in SANITIZER_METHODS:
                    return False
                if method in TAINT_SOURCE_METHODS:
                    return True
                if method == "apply":
                    return any(self.is_tainted(a) for a in expr.args[1:]) or any(
                        self.is_tainted(kw.value) for kw in expr.keywords
                    )
                return False  # tx_start (a structural id), emit, respond, ...
            tainted_args = any(self.is_tainted(a) for a in expr.args) or any(
                self.is_tainted(kw.value) for kw in expr.keywords
            )
            # A method call on tainted data yields tainted data.
            return tainted_args or self.is_tainted(
                expr.func if not isinstance(expr.func, ast.Name) else None
            )
        if isinstance(expr, ast.BoolOp):
            return any(self.is_tainted(v) for v in expr.values)
        if isinstance(expr, ast.BinOp):
            return self.is_tainted(expr.left) or self.is_tainted(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self.is_tainted(expr.operand)
        if isinstance(expr, ast.Compare):
            return self.is_tainted(expr.left) or any(
                self.is_tainted(c) for c in expr.comparators
            )
        if isinstance(expr, ast.Subscript):
            return self.is_tainted(expr.value) or self.is_tainted(expr.slice)
        if isinstance(expr, ast.IfExp):
            return (
                self.is_tainted(expr.test)
                or self.is_tainted(expr.body)
                or self.is_tainted(expr.orelse)
            )
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self.is_tainted(e) for e in expr.elts)
        if isinstance(expr, ast.Dict):
            return any(self.is_tainted(k) for k in expr.keys if k is not None) or any(
                self.is_tainted(v) for v in expr.values
            )
        if isinstance(expr, ast.Starred):
            return self.is_tainted(expr.value)
        if isinstance(expr, ast.NamedExpr):
            return self.is_tainted(expr.value)
        if isinstance(expr, ast.JoinedStr):
            return any(self.is_tainted(v) for v in expr.values)
        if isinstance(expr, ast.FormattedValue):
            return self.is_tainted(expr.value)
        if isinstance(expr, ast.Slice):
            return (
                self.is_tainted(expr.lower)
                or self.is_tainted(expr.upper)
                or self.is_tainted(expr.step)
            )
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            # Comprehensions close over the enclosing scope: conservative.
            return any(
                isinstance(n, ast.Name) and n.id in self.tainted
                for n in ast.walk(expr)
            )
        # Unknown node kinds: conservative over children.
        return any(
            self.is_tainted(child)
            for child in ast.iter_child_nodes(expr)
            if isinstance(child, ast.expr)
        )

    def is_tx_handle(self, expr: ast.expr) -> bool:
        """Is ``expr`` (possibly transitively) a ``ctx.tx_start`` result?"""
        if isinstance(expr, ast.Name):
            return expr.id in self.tx_handles
        if isinstance(expr, ast.Call):
            return self._is_tx_start(expr)
        return False

    def contains_tx_handle(self, expr: ast.expr) -> bool:
        """Does any subexpression of ``expr`` denote a tx handle?"""
        return any(
            self.is_tx_handle(node)
            for node in ast.walk(expr)
            if isinstance(node, (ast.Name, ast.Call))
        )
