"""Instrumentation-completeness linter: is this app valid transpiler output?

The paper's Babel transpiler mechanically inserts every annotation the
audit depends on; this repo hand-writes the annotated program, so
:func:`lint_app` re-establishes the guarantee statically.  It walks every
handler in an :class:`~repro.kem.program.AppSpec` -- following helper
functions that receive the context at any argument position -- and runs
the rule set of :mod:`repro.analysis.rules` (R1-R5) over each, then the
pairwise concurrency rules R6-R9 of :mod:`repro.analysis.effects` over
the app's symbolic effect summaries, producing a
:class:`~repro.analysis.report.LintReport` with exact source
coordinates.

Suppressions: a trailing comment ``# lint: disable=R5 -- justification``
on the offending line (or on the function's ``def`` line, to cover the
whole function) moves matching findings into ``report.suppressed``.
Suppression without a justification text is itself bad style but not
enforced here.

:func:`predict_footprints` computes, per handler, the statically
predicted operation footprint (variables read/written, events emitted,
registrations, tx callbacks, responds, branch/nondet sites).  The
dynamic crosscheck (:mod:`repro.analysis.crosscheck`) diffs these
predictions against an observed execution: any operation the prediction
missed is an *analyzer* bug (unsoundness), which is exactly the property
the lint verdict rests on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.ctxutil import (
    ParsedFunction,
    call_argument,
    collect_helper_calls,
    context_names,
    context_params,
    ctx_method_call,
    iter_calls,
    literal_str,
    parse_function,
)
from repro.analysis.dataflow import TaintEnv
from repro.analysis.effects import analyze_effects, effect_violations
from repro.analysis.report import LintReport, Violation
from repro.analysis.rules import (
    AppContext,
    HandlerInfo,
    check_r1,
    check_r2,
    check_r3,
    check_r4,
    check_r5,
    paths_resolve,
)
from repro.kem.program import AppSpec

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+?)(?:--|$)")


def _suppressed_rules(line: str) -> Set[str]:
    match = _SUPPRESS_RE.search(line)
    if not match:
        return set()
    return {part.strip().upper() for part in match.group(1).split(",") if part.strip()}


# -- per-function analysis ----------------------------------------------------


def make_handler_info(
    fid: str,
    fn: Any,
    ctx_position: int = 0,
    is_request_handler: bool = False,
) -> Optional[HandlerInfo]:
    """Parse and taint-analyse one function; ``None`` without source."""
    parsed = parse_function(fn)
    if parsed is None:
        return None
    params = [a.arg for a in parsed.func_def.args.posonlyargs + parsed.func_def.args.args]
    ctx_param_names = context_params(parsed.func_def, position=ctx_position)
    ctx_names = context_names(parsed.func_def, ctx_param_names)
    # Every non-context parameter may carry per-request data: the payload
    # of a handler, or -- for helpers analysed out of context -- whatever
    # the call site forwarded.  Seeding them tainted keeps R1 sound.
    seed = [p for p in params if p not in ctx_param_names]
    taint = TaintEnv(parsed.func_def, ctx_names, seed_tainted=seed)
    return HandlerInfo(
        fid=fid,
        fn=fn,
        parsed=parsed,
        ctx_names=ctx_names,
        taint=taint,
        is_request_handler=is_request_handler,
    )


def _discover(
    app: AppSpec, request_fids: Set[str]
) -> Tuple[List[HandlerInfo], List[str]]:
    """All handler infos plus reachable context-forwarding helpers.

    Helpers are analysed exactly once each (first discovery wins the
    diagnostic label), with every non-context parameter conservatively
    tainted, so shared helpers like a ``_retry(ctx)`` are not re-linted
    per caller.
    """
    infos: List[HandlerInfo] = []
    unparsed: List[str] = []
    seen_fns: Set[int] = set()

    def add(fid: str, fn: Any, position: int, is_request: bool) -> None:
        if id(fn) in seen_fns:
            return
        seen_fns.add(id(fn))
        info = make_handler_info(
            fid, fn, ctx_position=position, is_request_handler=is_request
        )
        if info is None:
            unparsed.append(fid)
            return
        infos.append(info)
        for helper_name, helper_pos in collect_helper_calls(
            info.parsed.func_def, info.ctx_names
        ).items():
            helper = getattr(fn, "__globals__", {}).get(helper_name)
            if helper is None or not callable(helper):
                continue
            add(f"{fid}>{helper_name}", helper, helper_pos, False)

    for fid in sorted(app.functions):
        add(fid, app.functions[fid], 0, fid in request_fids)
    return infos, unparsed


def _known_events(app: AppSpec, infos: List[HandlerInfo], init_events: Set[str]) -> Set[str]:
    events = set(init_events)
    for info in infos:
        for call in iter_calls(info.parsed.func_def):
            if ctx_method_call(call, info.ctx_names) == "register":
                event = call_argument(call, 0, "event")
                value = literal_str(event) if event is not None else None
                if value is not None:
                    events.add(value)
    return events


def _resolving_helpers(infos: List[HandlerInfo], appctx: AppContext) -> Set[str]:
    """Helper names whose every path responds or defers, to a fixpoint.

    Monotone: a helper can only *gain* resolving status as more helpers
    are proven, so iterating until stable is exact for the recursive case
    (and treats cycles as non-resolving, the safe direction).
    """
    helper_infos = {
        info.fid.rsplit(">", 1)[-1]: info for info in infos if ">" in info.fid
    }
    resolved: Set[str] = set()
    changed = True
    while changed:
        changed = False
        appctx.resolving_helpers = resolved
        for name, info in helper_infos.items():
            if name not in resolved and paths_resolve(info, appctx):
                resolved.add(name)
                changed = True
    return resolved


def lint_app(app: AppSpec) -> LintReport:
    """Run the full rule set over every handler of ``app``."""
    init_ctx = app.run_init()
    request_fids = {
        fid
        for event, fid in init_ctx.global_handlers
        if event.startswith("request/")
    }
    infos, unparsed = _discover(app, request_fids)
    appctx = AppContext(
        app_name=app.name,
        known_fids=set(app.functions),
        known_events=_known_events(
            app, infos, {event for event, _fid in init_ctx.global_handlers}
        ),
    )
    appctx.resolving_helpers = _resolving_helpers(infos, appctx)

    report = LintReport(app_name=app.name, unparsed=unparsed)
    info_by_fid = {info.fid: info for info in infos}
    for info in infos:
        found: List[Violation] = []
        found.extend(check_r1(info))
        found.extend(check_r2(info))
        found.extend(check_r3(info))
        found.extend(check_r4(info, appctx))
        found.extend(check_r5(info, appctx))
        _file_report(report, info, found)

    # R6-R9 ride on the symbolic effect summaries (repro.analysis.effects)
    # rather than the per-function walk: they are properties of handler
    # *pairs* and route closures.  Suppression works the same way, keyed
    # on the top-level handler each finding is anchored to.
    effect_found: Dict[str, List[Violation]] = {}
    for violation in effect_violations(analyze_effects(app)):
        effect_found.setdefault(violation.fid, []).append(violation)
    for fid, found in sorted(effect_found.items()):
        info = info_by_fid.get(fid)
        if info is None:
            report.violations.extend(
                sorted(found, key=lambda v: (v.line, v.col, v.rule))
            )
            continue
        _file_report(report, info, found)
    return report


def _file_report(
    report: LintReport, info: HandlerInfo, found: List[Violation]
) -> None:
    """Append ``found`` to ``report``, honouring suppression comments on
    the handler's ``def`` line or the violating line itself."""
    def_line_rules = _suppressed_rules(info.parsed.source_line(info.parsed.firstline))
    for violation in sorted(found, key=lambda v: (v.line, v.col, v.rule)):
        line_rules = _suppressed_rules(info.parsed.source_line(violation.line))
        if violation.rule in line_rules or violation.rule in def_line_rules:
            report.suppressed.append(violation)
        else:
            report.violations.append(violation)


# -- footprint prediction (consumed by the crosscheck) ------------------------


@dataclass
class HandlerSummary:
    """Statically predicted operation footprint of one handler function,
    including everything reachable through context-forwarding helpers."""

    fid: str
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    dynamic_vars: bool = False  # non-literal variable id seen
    emits: Set[str] = field(default_factory=set)
    dynamic_emits: bool = False
    registers: Set[Tuple[str, str]] = field(default_factory=set)
    unregisters: Set[Tuple[str, str]] = field(default_factory=set)
    dynamic_registrations: bool = False
    tx_callbacks: Set[str] = field(default_factory=set)
    dynamic_callbacks: bool = False
    tx_ops: Set[str] = field(default_factory=set)  # {"tx_start", "tx_get", ...}
    responds: bool = False
    branch_sites: int = 0
    control_sites: int = 0
    nondet_sites: int = 0
    opaque: bool = False  # source unavailable: predict nothing, trust nothing

    def to_dict(self) -> "Dict[str, Any]":
        """JSON form, deterministic; golden-pinned under FOOTPRINTS_SPEC."""
        return {
            "fid": self.fid,
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "dynamic_vars": self.dynamic_vars,
            "emits": sorted(self.emits),
            "dynamic_emits": self.dynamic_emits,
            "registers": sorted(map(list, self.registers)),
            "unregisters": sorted(map(list, self.unregisters)),
            "dynamic_registrations": self.dynamic_registrations,
            "tx_callbacks": sorted(self.tx_callbacks),
            "dynamic_callbacks": self.dynamic_callbacks,
            "tx_ops": sorted(self.tx_ops),
            "responds": self.responds,
            "branch_sites": self.branch_sites,
            "control_sites": self.control_sites,
            "nondet_sites": self.nondet_sites,
            "opaque": self.opaque,
        }

    def merge(self, other: "HandlerSummary") -> None:
        self.reads |= other.reads
        self.writes |= other.writes
        self.dynamic_vars |= other.dynamic_vars
        self.emits |= other.emits
        self.dynamic_emits |= other.dynamic_emits
        self.registers |= other.registers
        self.unregisters |= other.unregisters
        self.dynamic_registrations |= other.dynamic_registrations
        self.tx_callbacks |= other.tx_callbacks
        self.dynamic_callbacks |= other.dynamic_callbacks
        self.tx_ops |= other.tx_ops
        self.responds |= other.responds
        self.branch_sites += other.branch_sites
        self.control_sites += other.control_sites
        self.nondet_sites += other.nondet_sites
        self.opaque |= other.opaque


def _summarize_one(fid: str, parsed: ParsedFunction, ctx_names: Set[str]) -> HandlerSummary:
    summary = HandlerSummary(fid=fid)
    for call in iter_calls(parsed.func_def):
        method = ctx_method_call(call, ctx_names)
        if method is None:
            continue
        if method in ("read", "write", "update"):
            arg = call_argument(call, 0, "var_id")
            var_id = literal_str(arg) if arg is not None else None
            if var_id is None:
                summary.dynamic_vars = True
                continue
            if method in ("read", "update"):
                summary.reads.add(var_id)
            if method in ("write", "update"):
                summary.writes.add(var_id)
        elif method == "emit":
            arg = call_argument(call, 0, "event")
            event = literal_str(arg) if arg is not None else None
            if event is None:
                summary.dynamic_emits = True
            else:
                summary.emits.add(event)
        elif method in ("register", "unregister"):
            event_arg = call_argument(call, 0, "event")
            fid_arg = call_argument(call, 1, "function_id")
            event = literal_str(event_arg) if event_arg is not None else None
            target = literal_str(fid_arg) if fid_arg is not None else None
            if event is None or target is None:
                summary.dynamic_registrations = True
            elif method == "register":
                summary.registers.add((event, target))
            else:
                summary.unregisters.add((event, target))
        elif method in ("tx_start", "tx_put", "tx_commit", "tx_abort"):
            summary.tx_ops.add(method)
        elif method == "tx_get":
            summary.tx_ops.add(method)
            arg = call_argument(call, 2, "callback_fid")
            callback = literal_str(arg) if arg is not None else None
            if callback is None:
                summary.dynamic_callbacks = True
            else:
                summary.tx_callbacks.add(callback)
        elif method == "respond":
            summary.responds = True
        elif method == "branch":
            summary.branch_sites += 1
        elif method == "control":
            summary.control_sites += 1
        elif method == "nondet":
            summary.nondet_sites += 1
    return summary


def _summarize_recursive(
    fid: str,
    fn: Any,
    ctx_position: int,
    seen: Set[int],
) -> HandlerSummary:
    if id(fn) in seen:
        return HandlerSummary(fid=fid)
    seen.add(id(fn))
    parsed = parse_function(fn)
    if parsed is None:
        return HandlerSummary(fid=fid, opaque=True)
    ctx_param_names = context_params(parsed.func_def, position=ctx_position)
    ctx_names = context_names(parsed.func_def, ctx_param_names)
    summary = _summarize_one(fid, parsed, ctx_names)
    for helper_name, helper_pos in collect_helper_calls(
        parsed.func_def, ctx_names
    ).items():
        helper = getattr(fn, "__globals__", {}).get(helper_name)
        if helper is None or not callable(helper):
            summary.opaque = True
            continue
        summary.merge(
            _summarize_recursive(f"{fid}>{helper_name}", helper, helper_pos, seen)
        )
    summary.fid = fid
    return summary


#: Version tag for the golden-pinned footprint JSON.  Any intentional
#: change to what predict_footprints reports must bump this and
#: regenerate tests/golden/footprints_*.json (KAROUSOS_REGEN_GOLDEN=1).
FOOTPRINTS_SPEC = "repro.footprints/1"


def predict_footprints(app: AppSpec) -> Dict[str, HandlerSummary]:
    """Per function id: the statically predicted operation footprint."""
    return {
        fid: _summarize_recursive(fid, fn, 0, set())
        for fid, fn in sorted(app.functions.items())
    }
