"""The instrumentation-contract rule set (R1-R5).

The repo hand-writes the annotated program P_a (Appendix C.1.1) instead
of generating it with the paper's Babel transpiler, so nothing mechanical
guarantees the annotation discipline the transpiler would insert.  These
rules re-impose that contract statically:

=====  ================================================================
R1     control-flow taint: every ``if``/``while``/ternary/loop/boolean
       short-circuit whose outcome depends on logged or replayed data
       (``ctx.read``/``ctx.update``/``ctx.tx_*`` results, payloads,
       ``ctx.rid``, ``ctx.nondet``) must be laundered through
       ``ctx.branch``/``ctx.control``
R2     no side-channel state: no module-level mutable globals, no
       closure cells mutated across activations, no in-place mutation
       of payload-carried containers outside ``ctx.write``
R3     wrapped nondeterminism: ``random``/``time``/``os.urandom``/...
       only inside ``ctx.nondet``; no iteration over unordered sets
R4     handler-registration hygiene: literal event names and function
       ids that exist in the AppSpec; transaction handles must not
       escape the creating activation through ``emit``/``respond``
R5     response discipline: every request-handler path responds via
       ``ctx.respond`` or provably defers to a descendant activation
       (``ctx.tx_get`` callback / ``ctx.emit``)
=====  ================================================================

Each checker takes a :class:`HandlerInfo` (one function, already parsed
and taint-analysed) plus app-wide context and returns
:class:`~repro.analysis.report.Violation` objects with exact source
coordinates.
"""

from __future__ import annotations

import ast
import types
from dataclasses import dataclass, field
from typing import Any, List, Optional, Set

from repro.analysis.ctxutil import (
    ParsedFunction,
    call_argument,
    call_target_path,
    ctx_method_call,
    helper_ctx_positions,
    iter_calls,
    literal_str,
    resolve_global,
    walk_scoped,
)
from repro.analysis.dataflow import TaintEnv
from repro.analysis.report import ERROR, WARN, Violation

#: Container types whose module-level instances are shared mutable state.
MUTABLE_GLOBAL_TYPES = (list, dict, set, bytearray)

#: In-place mutation methods of the builtin containers.
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear",
        "add", "discard", "update", "setdefault", "popitem",
        "sort", "reverse",
    }
)

#: Modules whose calls are nondeterministic (R3).
NONDET_MODULES = frozenset({"random", "time", "secrets", "uuid"})
#: Specific dotted call paths that are nondeterministic.
NONDET_CALLS = frozenset(
    {
        "os.urandom", "os.getrandom", "os.times",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


@dataclass
class HandlerInfo:
    """One analysed function: a handler or a context-forwarding helper."""

    fid: str  # "handler" or "handler>helper" for diagnostics
    fn: object
    parsed: ParsedFunction
    ctx_names: Set[str]
    taint: TaintEnv
    is_request_handler: bool = False


@dataclass
class AppContext:
    """App-wide facts every rule may consult."""

    app_name: str
    known_fids: Set[str]
    #: Events with at least one (init-time or literal in-handler)
    #: registration; includes the ``request/*`` route events.
    known_events: Set[str]
    #: Helper names (per enclosing module) proven to respond-or-defer on
    #: every path; filled by the linter before R5 runs.
    resolving_helpers: Set[str] = field(default_factory=set)


def _violation(
    info: HandlerInfo, rule: str, severity: str, node: ast.AST, message: str
) -> Violation:
    return Violation(
        rule=rule,
        severity=severity,
        fid=info.fid,
        file=info.parsed.filename,
        line=info.parsed.abs_line(node),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


# -- R1: control-flow taint --------------------------------------------------


def check_r1(info: HandlerInfo) -> List[Violation]:
    out: List[Violation] = []
    taint = info.taint
    checked_boolops: Set[int] = set()

    def flag(node: ast.AST, what: str, cond: ast.expr) -> None:
        try:
            snippet = ast.unparse(cond)
        except Exception:  # pragma: no cover
            snippet = "<condition>"
        if len(snippet) > 60:
            snippet = snippet[:57] + "..."
        out.append(
            _violation(
                info, "R1", ERROR, node,
                f"{what} depends on logged/replayed data without "
                f"ctx.branch/ctx.control: `{snippet}`",
            )
        )

    def check_test(node: ast.AST, what: str, cond: ast.expr) -> None:
        for sub in ast.walk(cond):
            if isinstance(sub, ast.BoolOp):
                checked_boolops.add(id(sub))
        if taint.is_tainted(cond):
            flag(node, what, cond)

    for node in walk_scoped(info.parsed.func_def):
        if isinstance(node, ast.If):
            check_test(node, "if-condition", node.test)
        elif isinstance(node, ast.While):
            check_test(node, "while-condition", node.test)
        elif isinstance(node, ast.IfExp):
            check_test(node, "conditional expression", node.test)
        elif isinstance(node, ast.Assert):
            check_test(node, "assert condition", node.test)
        elif isinstance(node, ast.For):
            if taint.is_tainted(node.iter):
                flag(node, "loop iterable", node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if taint.is_tainted(gen.iter):
                    flag(node, "comprehension iterable", gen.iter)
                for if_clause in gen.ifs:
                    if taint.is_tainted(if_clause):
                        flag(node, "comprehension filter", if_clause)
    # Boolean short-circuits: a tainted early operand decides whether the
    # later operands -- and any ctx operations inside them -- execute.
    for node in walk_scoped(info.parsed.func_def):
        if not isinstance(node, ast.BoolOp) or id(node) in checked_boolops:
            continue
        for i, operand in enumerate(node.values[:-1]):
            if not taint.is_tainted(operand):
                continue
            later_has_op = any(
                ctx_method_call(call, info.ctx_names) is not None
                for rest in node.values[i + 1:]
                for call in ast.walk(rest)
                if isinstance(call, ast.Call)
            )
            if later_has_op:
                flag(node, "boolean short-circuit", operand)
                break
    return out


# -- R2: side-channel state --------------------------------------------------


def _mutable_global(info: HandlerInfo, name_node: ast.expr) -> Optional[str]:
    """Name of the module-level mutable container ``name_node`` refers to."""
    if not isinstance(name_node, ast.Name):
        return None
    if name_node.id in info.taint.tainted or name_node.id in info.ctx_names:
        return None
    value = getattr(info.fn, "__globals__", {}).get(name_node.id)
    if isinstance(value, MUTABLE_GLOBAL_TYPES):
        return name_node.id
    return None


def check_r2(info: HandlerInfo) -> List[Violation]:
    out: List[Violation] = []
    handled: Set[int] = set()

    freevars = getattr(getattr(info.fn, "__code__", None), "co_freevars", ())
    if freevars:
        out.append(
            _violation(
                info, "R2", WARN, info.parsed.func_def,
                f"handler closes over cells {sorted(freevars)}: closure state "
                "is shared across activations and invisible to the audit",
            )
        )

    def flag_base(node: ast.AST, base: ast.expr, action: str) -> None:
        gname = _mutable_global(info, base)
        if gname is not None:
            handled.add(id(base))
            out.append(
                _violation(
                    info, "R2", ERROR, node,
                    f"{action} of module-level mutable global {gname!r}: "
                    "shared state must live in loggable variables "
                    "(ctx.read/ctx.write)",
                )
            )
        elif info.taint.is_tainted(base):
            handled.add(id(base))
            out.append(
                _violation(
                    info, "R2", ERROR, node,
                    f"{action} of a payload/logged-value container in place: "
                    "the mutation bypasses ctx.write and is invisible to "
                    "the audit",
                )
            )

    for node in walk_scoped(info.parsed.func_def):
        if isinstance(node, ast.Global):
            out.append(
                _violation(
                    info, "R2", ERROR, node,
                    f"`global {', '.join(node.names)}`: module-level state "
                    "is a side channel around the variable log",
                )
            )
        elif isinstance(node, ast.Nonlocal):
            out.append(
                _violation(
                    info, "R2", ERROR, node,
                    f"`nonlocal {', '.join(node.names)}`: closure cells "
                    "mutated across activations bypass the variable log",
                )
            )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS and ctx_method_call(
                node, info.ctx_names
            ) is None:
                flag_base(node, node.func.value, f".{node.func.attr}() mutation")
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    flag_base(node, target.value, "item/attribute assignment")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    flag_base(node, target.value, "deletion")
    # Bare reads of mutable globals: hazard (another activation may have
    # mutated the object), but not by itself a contract breach.
    for node in walk_scoped(info.parsed.func_def):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and id(node) not in handled
        ):
            gname = _mutable_global(info, node)
            if gname is not None:
                out.append(
                    _violation(
                        info, "R2", WARN, node,
                        f"read of module-level mutable global {gname!r}: "
                        "move it into a loggable variable or freeze it",
                    )
                )
    return out


# -- R3: wrapped nondeterminism ----------------------------------------------


def _nondet_reason(info: HandlerInfo, call: ast.Call) -> Optional[str]:
    path = call_target_path(call)
    if path is None:
        return None
    base = path.split(".")[0]
    base_obj = resolve_global(info.fn, base)
    if (
        isinstance(base_obj, types.ModuleType)
        and base_obj.__name__ in NONDET_MODULES
        and "." in path
    ):
        return f"{path} (from module {base_obj.__name__})"
    resolved = resolve_global(info.fn, path)
    if resolved is not None:
        module = getattr(resolved, "__module__", None)
        if module in NONDET_MODULES:
            return f"{path} (from module {module})"
        qual = f"{module}.{getattr(resolved, '__name__', '')}"
        if qual in NONDET_CALLS or path in NONDET_CALLS:
            return path
        return None
    if base in NONDET_MODULES or path in NONDET_CALLS:
        return path
    return None


class _R3Checker(ast.NodeVisitor):
    """Descends everywhere (lambdas included: per-slot code replays too),
    but skips the argument subtree of ``ctx.nondet(...)`` -- that is the
    sanctioned wrapper."""

    def __init__(self, info: HandlerInfo):
        self.info = info
        self.out: List[Violation] = []

    def visit_Call(self, node: ast.Call) -> None:
        if ctx_method_call(node, self.info.ctx_names) == "nondet":
            return  # wrapped: do not descend into the argument
        reason = _nondet_reason(self.info, node)
        if reason is not None:
            self.out.append(
                _violation(
                    self.info, "R3", ERROR, node,
                    f"call to nondeterministic {reason} outside ctx.nondet: "
                    "the result cannot be replayed by the verifier",
                )
            )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        it = node.iter
        is_set = isinstance(it, (ast.Set, ast.SetComp)) or (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id in ("set", "frozenset")
        )
        if is_set:
            self.out.append(
                _violation(
                    self.info, "R3", WARN, node,
                    "iteration over an unordered set: the visit order is "
                    "not replayable; sort it or wrap in ctx.nondet",
                )
            )
        self.generic_visit(node)


def check_r3(info: HandlerInfo) -> List[Violation]:
    checker = _R3Checker(info)
    checker.visit(info.parsed.func_def)
    return checker.out


# -- R4: handler-registration hygiene ----------------------------------------


def check_r4(info: HandlerInfo, appctx: AppContext) -> List[Violation]:
    out: List[Violation] = []

    def check_literal(node: ast.Call, arg: Optional[ast.expr], what: str) -> Optional[str]:
        if arg is None:
            out.append(
                _violation(info, "R4", ERROR, node, f"missing {what} argument")
            )
            return None
        value = literal_str(arg)
        if value is None:
            try:
                snippet = ast.unparse(arg)
            except Exception:  # pragma: no cover
                snippet = "<expr>"
            out.append(
                _violation(
                    info, "R4", ERROR, node,
                    f"non-literal {what} `{snippet}`: the verifier cannot "
                    "bound the handler set statically",
                )
            )
        return value

    def check_fid(node: ast.Call, value: Optional[str], what: str) -> None:
        if value is not None and value not in appctx.known_fids:
            out.append(
                _violation(
                    info, "R4", ERROR, node,
                    f"{what} {value!r} is not in the AppSpec function table",
                )
            )

    def check_handle_escape(node: ast.Call, arg: Optional[ast.expr], via: str) -> None:
        if arg is not None and info.taint.contains_tx_handle(arg):
            out.append(
                _violation(
                    info, "R4", ERROR, node,
                    f"transaction handle escapes the activation through "
                    f"{via}: tx handles are only meaningful to the "
                    "creating request's descendants",
                )
            )

    for call in iter_calls(info.parsed.func_def):
        method = ctx_method_call(call, info.ctx_names)
        if method == "emit":
            event = check_literal(call, call_argument(call, 0, "event"), "event name")
            if event is not None and event not in appctx.known_events:
                out.append(
                    _violation(
                        info, "R4", WARN, call,
                        f"emit of event {event!r} which no registration "
                        "(init-time or literal ctx.register) ever handles",
                    )
                )
            check_handle_escape(call, call_argument(call, 1, "payload"), "an emit payload")
        elif method in ("register", "unregister"):
            check_literal(call, call_argument(call, 0, "event"), "event name")
            fid = check_literal(call, call_argument(call, 1, "function_id"), "function id")
            check_fid(call, fid, f"{method}ed function")
        elif method == "tx_get":
            fid = check_literal(
                call, call_argument(call, 2, "callback_fid"), "callback function id"
            )
            check_fid(call, fid, "tx_get callback")
            check_handle_escape(call, call_argument(call, 3, "extra"), "tx_get extra data")
        elif method == "respond":
            check_handle_escape(call, call_argument(call, 0, "payload"), "a response")
    return out


# -- R5: response discipline --------------------------------------------------


def _statically_nonempty(iter_expr: ast.expr, fn: Any) -> bool:
    """Can we prove the iterable has at least one element?"""
    if isinstance(iter_expr, (ast.Tuple, ast.List)) and iter_expr.elts:
        return True
    if isinstance(iter_expr, ast.Constant) and iter_expr.value:
        return True
    if isinstance(iter_expr, ast.Name):
        value = getattr(fn, "__globals__", {}).get(iter_expr.id)
        if isinstance(value, (tuple, list, str)) and len(value) > 0:
            return True
    return False


def paths_resolve(info: HandlerInfo, appctx: AppContext) -> bool:
    """True iff every path through the function responds or defers."""
    ctx_names = info.ctx_names

    def is_resolving_call(expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        method = ctx_method_call(expr, ctx_names)
        if method in ("respond", "tx_get", "emit"):
            return True
        hit = helper_ctx_positions(expr, ctx_names)
        return hit is not None and hit[0] in appctx.resolving_helpers

    def seq(stmts: List[ast.stmt], cont: List[ast.stmt]) -> bool:
        if not stmts:
            return seq(cont, []) if cont else False
        s, rest = stmts[0], list(stmts[1:])
        if isinstance(s, ast.Expr) and is_resolving_call(s.value):
            return True
        if isinstance(s, ast.Return):
            return s.value is not None and is_resolving_call(s.value)
        if isinstance(s, ast.Raise):
            # The activation aborts loudly; no silent unresponded path.
            return True
        if isinstance(s, ast.If):
            return seq(s.body, rest + cont) and seq(s.orelse, rest + cont)
        if isinstance(s, ast.For):
            if _statically_nonempty(s.iter, info.fn) and seq(s.body, []):
                return True
            return seq(rest, cont)  # the loop may run zero times
        if isinstance(s, ast.While):
            return seq(rest, cont)
        if isinstance(s, ast.With):
            return seq(list(s.body) + rest, cont)
        if isinstance(s, ast.Try):
            return seq(list(s.body) + rest, cont)
        return seq(rest, cont)

    return seq(list(info.parsed.func_def.body), [])


def check_r5(info: HandlerInfo, appctx: AppContext) -> List[Violation]:
    if not info.is_request_handler:
        return []
    if paths_resolve(info, appctx):
        return []
    return [
        _violation(
            info, "R5", ERROR, info.parsed.func_def,
            "a path through this request handler neither responds "
            "(ctx.respond) nor defers to a descendant activation "
            "(ctx.tx_get / ctx.emit): the request would hang",
        )
    ]
