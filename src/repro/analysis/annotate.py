"""Automatic loggable-variable annotation (paper sections 1 and 5).

Marking a variable loggable when it has no R-concurrent accesses only
costs performance; *failing* to mark a genuinely shared variable costs
Completeness (section 5).  The safe automation is therefore a
conservative escape-style analysis: walk each handler function's AST,
collect which variables it reads and writes, and classify:

* ``read-only``   -- never written by any handler: every read observes the
  initialisation write and is R-ordered with it; safe to leave unlogged.
* ``single-writer-tree`` -- written and read, but only ever accessed from
  one handler function that is a request handler with no descendants
  registered... (not computable in general; we do not attempt it).
* ``shared``      -- written by at least one handler: conservatively
  loggable.
* ``dynamic``     -- accessed through a non-literal variable id: the
  analysis cannot bound the footprint, so every declared variable becomes
  conservatively loggable and the site is reported.

The analyzer also surfaces plain bugs: variables accessed but never
declared, and declarations never accessed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.ctxutil import (
    VAR_READ_METHODS as READ_METHODS,
    VAR_UPDATE_METHODS as UPDATE_METHODS,
    VAR_WRITE_METHODS as WRITE_METHODS,
    collect_helper_calls,
    context_names,
    context_params,
    parse_function,
)
from repro.kem.program import AppSpec


@dataclass
class VariableUsage:
    var_id: str
    readers: Set[str] = field(default_factory=set)
    writers: Set[str] = field(default_factory=set)

    @property
    def accessors(self) -> Set[str]:
        return self.readers | self.writers

    @property
    def written(self) -> bool:
        return bool(self.writers)


@dataclass
class AnnotationReport:
    """Result of analysing one application."""

    usage: Dict[str, VariableUsage]
    declared: Dict[str, bool]  # var id -> declared-loggable flag
    dynamic_sites: List[str]  # "function:lineno" of non-literal accesses
    undeclared: Set[str]  # accessed but never declared
    unused: Set[str]  # declared but never accessed
    unparsed: List[str]  # handler functions whose source was unavailable

    def classification(self, var_id: str) -> str:
        if self.dynamic_sites:
            return "dynamic-conservative"
        usage = self.usage.get(var_id)
        if usage is None or not usage.accessors:
            return "unused"
        if not usage.written:
            return "read-only"
        return "shared"

    def recommended_loggable(self, var_id: str) -> bool:
        """True iff the variable must be annotated loggable."""
        return self.classification(var_id) in ("shared", "dynamic-conservative")


class _AccessCollector(ast.NodeVisitor):
    """Find ``<ctx>.read("v")`` / ``<ctx>.write("v", ...)`` call sites.

    The context parameter is resolved through the shared helper
    (``repro.analysis.ctxutil``): by annotation when one parameter names a
    ``*Context`` type, by position otherwise, plus every local alias
    (``c = ctx``) -- so renamed or aliased context parameters cannot make
    accesses invisible to the escape analysis (a Completeness hazard).
    """

    def __init__(self, ctx_names: Set[str], fn_name: str):
        self.ctx_names = ctx_names
        self.fn_name = fn_name
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.dynamic: List[str] = []

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        fn = node.func
        if not (
            isinstance(fn, ast.Attribute)
            and isinstance(fn.value, ast.Name)
            and fn.value.id in self.ctx_names
        ):
            return
        if fn.attr not in READ_METHODS + WRITE_METHODS + UPDATE_METHODS:
            return
        if not node.args:
            self.dynamic.append(f"{self.fn_name}:{node.lineno}")
            return
        target = node.args[0]
        if isinstance(target, ast.Constant) and isinstance(target.value, str):
            if fn.attr in READ_METHODS + UPDATE_METHODS:
                self.reads.add(target.value)
            if fn.attr in WRITE_METHODS + UPDATE_METHODS:
                self.writes.add(target.value)
        else:
            self.dynamic.append(f"{self.fn_name}:{node.lineno}")


def _function_accesses(
    fid: str,
    fn: Any,
    _seen: Optional[Set[object]] = None,
    _ctx_position: int = 0,
) -> Optional[Tuple[Set[str], Set[str], List[str]]]:
    """Accesses of ``fn`` plus, recursively, of every helper it calls with
    the context at any argument position (resolved through
    ``fn.__globals__``)."""
    if _seen is None:
        _seen = set()
    if fn in _seen:
        return (set(), set(), [])
    _seen.add(fn)
    parsed = parse_function(fn)
    if parsed is None:
        return None
    func_def = parsed.func_def
    ctx_params = context_params(func_def, position=_ctx_position)
    if not ctx_params:
        return (set(), set(), [])
    ctx_names = context_names(func_def, ctx_params)
    collector = _AccessCollector(ctx_names, fid)
    collector.visit(func_def)
    reads, writes = set(collector.reads), set(collector.writes)
    dynamic = list(collector.dynamic)
    for helper_name, helper_pos in sorted(
        collect_helper_calls(func_def, ctx_names).items()
    ):
        helper = getattr(fn, "__globals__", {}).get(helper_name)
        if helper is None or not callable(helper):
            continue
        nested = _function_accesses(
            f"{fid}>{helper_name}", helper, _seen, _ctx_position=helper_pos
        )
        if nested is None:
            dynamic.append(f"{fid}:{helper_name}:<unparsed helper>")
            continue
        reads |= nested[0]
        writes |= nested[1]
        dynamic.extend(nested[2])
    return (reads, writes, dynamic)


def analyze_app(app: AppSpec) -> AnnotationReport:
    """Statically analyse variable usage across all handler functions."""
    init_ctx = app.run_init()
    usage: Dict[str, VariableUsage] = {
        var_id: VariableUsage(var_id) for var_id in init_ctx.initial_vars
    }
    dynamic_sites: List[str] = []
    unparsed: List[str] = []
    undeclared: Set[str] = set()
    for fid, fn in sorted(app.functions.items()):
        result = _function_accesses(fid, fn)
        if result is None:
            unparsed.append(fid)
            continue
        reads, writes, dynamic = result
        dynamic_sites.extend(dynamic)
        for var_id in reads | writes:
            if var_id not in usage:
                undeclared.add(var_id)
                usage[var_id] = VariableUsage(var_id)
            if var_id in reads:
                usage[var_id].readers.add(fid)
            if var_id in writes:
                usage[var_id].writers.add(fid)
    unused = {
        var_id
        for var_id in init_ctx.initial_vars
        if not usage[var_id].accessors
    }
    return AnnotationReport(
        usage=usage,
        declared=dict(init_ctx.loggable),
        dynamic_sites=dynamic_sites,
        undeclared=undeclared,
        unused=unused,
        unparsed=unparsed,
    )


def suggest_annotations(app: AppSpec) -> Dict[str, str]:
    """Per declared variable: 'keep-loggable', 'can-skip-logging', or
    'MUST-be-loggable' when the declaration under-annotates.

    "can-skip-logging" is advisory: treating a read-only variable as
    non-loggable saves log entries with no Completeness risk (all its
    reads are R-ordered with the initialisation write).
    """
    report = analyze_app(app)
    out: Dict[str, str] = {}
    for var_id, declared_loggable in report.declared.items():
        needed = report.recommended_loggable(var_id)
        if needed and not declared_loggable:
            out[var_id] = "MUST-be-loggable"
        elif not needed and declared_loggable:
            out[var_id] = "can-skip-logging"
        else:
            out[var_id] = "keep" if declared_loggable else "keep-unlogged"
    return out
