"""Wire format for traces.

The collector's trace travels from the collection point to the verifier;
like the advice codec, this is a strict, versioned JSON encoding.  Note
the trust model difference: the *transport* is untrusted only for advice
-- the trace must reach the verifier over a channel the principal trusts
(paper section 2.1) -- but a strict parser is good hygiene either way.
"""

from __future__ import annotations

import json

from repro.advice.codec import decode_value, encode_value
from repro.errors import AdviceFormatError
from repro.trace.trace import REQ, RESP, Request, Trace, TraceEvent

TRACE_FORMAT_VERSION = 1


def encode_trace(trace: Trace) -> str:
    events = []
    for event in trace:
        if event.kind == REQ:
            request: Request = event.data
            events.append(
                {
                    "kind": REQ,
                    "rid": event.rid,
                    "route": request.route,
                    "payload": encode_value(dict(request.payload)),
                }
            )
        else:
            events.append(
                {"kind": RESP, "rid": event.rid, "data": encode_value(event.data)}
            )
    return json.dumps(
        {"version": TRACE_FORMAT_VERSION, "events": events}, separators=(",", ":")
    )


def decode_trace(payload: str) -> Trace:
    """Parse a trace document; structural surprises raise
    :class:`AdviceFormatError`, nothing else escapes."""
    try:
        return _decode_trace(payload)
    except AdviceFormatError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, AttributeError) as exc:
        raise AdviceFormatError(
            f"malformed trace: {type(exc).__name__}: {exc}"
        ) from exc


def _decode_trace(payload: str) -> Trace:
    try:
        doc = json.loads(payload)
    except (TypeError, ValueError) as exc:
        raise AdviceFormatError(f"trace is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != TRACE_FORMAT_VERSION:
        raise AdviceFormatError("unsupported trace document")
    events = doc.get("events")
    if not isinstance(events, list):
        raise AdviceFormatError("trace events must be a list")
    trace = Trace()
    for event in events:
        if not isinstance(event, dict) or not isinstance(event.get("rid"), str):
            raise AdviceFormatError(f"bad trace event: {event!r}")
        if event.get("kind") == REQ:
            payload_value = decode_value(event["payload"])
            if not isinstance(payload_value, dict):
                raise AdviceFormatError("request payload must be a mapping")
            if not isinstance(event.get("route"), str):
                raise AdviceFormatError("request route must be a string")
            trace.append(
                TraceEvent(
                    REQ,
                    event["rid"],
                    Request.make(event["rid"], event["route"], **payload_value),
                )
            )
        elif event.get("kind") == RESP:
            trace.append(TraceEvent(RESP, event["rid"], decode_value(event["data"])))
        else:
            raise AdviceFormatError(f"unknown trace event kind {event.get('kind')!r}")
    return trace
