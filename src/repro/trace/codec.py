"""Wire format for traces.

The collector's trace travels from the collection point to the verifier;
like the advice codec, this is a strict, versioned encoding.  Note the
trust model difference: the *transport* is untrusted only for advice --
the trace must reach the verifier over a channel the principal trusts
(paper section 2.1) -- but a strict parser is good hygiene either way.

Two physical shapes share one logical per-event encoding:

* the legacy whole-document JSON (:func:`encode_trace` /
  :func:`decode_trace`), now a thin wrapper that concatenates the
  per-event documents;
* a record stream (:mod:`repro.storage`): one meta record then one
  record per event, written incrementally (the collector spills events
  as it logs them) and consumed as an iterator (the verifier never needs
  the serialised document in memory).
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator

from repro.errors import AdviceFormatError
from repro.storage.backend import RecordReader, RecordWriter, StorageBackend
from repro.storage.records import pack_json, unpack_json
from repro.storage.values import decode_value, encode_value
from repro.trace.trace import REQ, RESP, Request, Trace, TraceEvent

TRACE_FORMAT_VERSION = 1

STREAM_KIND = "trace"

# Record types (stable wire identifiers; epoch streams embed RT_EVENT).
RT_META = 1
RT_EVENT = 2


# -- one event ----------------------------------------------------------------


def encode_trace_event(event: TraceEvent) -> dict:
    if event.kind == REQ:
        request: Request = event.data
        return {
            "kind": REQ,
            "rid": event.rid,
            "route": request.route,
            "payload": encode_value(dict(request.payload)),
        }
    return {"kind": RESP, "rid": event.rid, "data": encode_value(event.data)}


def decode_trace_event(event: object) -> TraceEvent:
    if not isinstance(event, dict) or not isinstance(event.get("rid"), str):
        raise AdviceFormatError(f"bad trace event: {event!r}")
    if event.get("kind") == REQ:
        payload_value = decode_value(event["payload"])
        if not isinstance(payload_value, dict):
            raise AdviceFormatError("request payload must be a mapping")
        if not isinstance(event.get("route"), str):
            raise AdviceFormatError("request route must be a string")
        return TraceEvent(
            REQ,
            event["rid"],
            Request.make(event["rid"], event["route"], **payload_value),
        )
    if event.get("kind") == RESP:
        return TraceEvent(RESP, event["rid"], decode_value(event["data"]))
    raise AdviceFormatError(f"unknown trace event kind {event.get('kind')!r}")


# -- legacy whole-document JSON ------------------------------------------------


def encode_trace(trace: Trace) -> str:
    doc = {
        "version": TRACE_FORMAT_VERSION,
        "events": [encode_trace_event(e) for e in trace],
    }
    return json.dumps(doc, separators=(",", ":"))


def decode_trace(payload: str) -> Trace:
    """Parse a trace document; structural surprises raise
    :class:`AdviceFormatError`, nothing else escapes."""
    try:
        return _decode_trace(payload)
    except AdviceFormatError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, AttributeError) as exc:
        raise AdviceFormatError(
            f"malformed trace: {type(exc).__name__}: {exc}"
        ) from exc


def _decode_trace(payload: str) -> Trace:
    try:
        doc = json.loads(payload)
    except (TypeError, ValueError) as exc:
        raise AdviceFormatError(f"trace is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != TRACE_FORMAT_VERSION:
        raise AdviceFormatError("unsupported trace document")
    events = doc.get("events")
    if not isinstance(events, list):
        raise AdviceFormatError("trace events must be a list")
    trace = Trace()
    for event in events:
        trace.append(decode_trace_event(event))
    return trace


# -- record streams ------------------------------------------------------------


def trace_meta_record() -> bytes:
    return pack_json({"version": TRACE_FORMAT_VERSION})


def check_trace_meta(payload: bytes) -> None:
    doc = unpack_json(payload)
    if not isinstance(doc, dict) or doc.get("version") != TRACE_FORMAT_VERSION:
        raise AdviceFormatError(f"unsupported trace stream meta {doc!r}")


def write_trace_records(
    events: Iterable[TraceEvent], writer: RecordWriter, seal: bool = True
) -> None:
    """Spill ``events`` into ``writer`` one record at a time."""
    writer.append(RT_META, trace_meta_record())
    for event in events:
        writer.append(RT_EVENT, pack_json(encode_trace_event(event)))
    if seal:
        writer.seal()


def iter_trace_records(reader: RecordReader) -> Iterator[TraceEvent]:
    """Decode a trace record stream incrementally.

    The verifier can consume this generator directly; nothing but the
    current record is resident.  Structural surprises raise
    :class:`AdviceFormatError`-family errors.
    """
    if reader.kind != STREAM_KIND:
        raise AdviceFormatError(
            f"expected a {STREAM_KIND!r} stream, found {reader.kind!r}"
        )
    saw_meta = False
    for rtype, payload in reader:
        if rtype == RT_META:
            if saw_meta:
                raise AdviceFormatError("duplicate trace meta record")
            check_trace_meta(payload)
            saw_meta = True
        elif rtype == RT_EVENT:
            if not saw_meta:
                raise AdviceFormatError("trace stream has no meta record")
            yield decode_trace_event(unpack_json(payload))
        else:
            raise AdviceFormatError(f"unknown trace record type {rtype}")
    if not saw_meta:
        raise AdviceFormatError("trace stream has no meta record")


def write_trace(backend: StorageBackend, name: str, trace: Trace) -> None:
    write_trace_records(trace, backend.create(name, STREAM_KIND))


def read_trace(backend: StorageBackend, name: str) -> Trace:
    """Materialise a stored trace (callers that can, should prefer
    :func:`iter_trace_records`)."""
    with backend.reader(name) as reader:
        return Trace(list(iter_trace_records(reader)))
