"""Request/response traces (paper Definition 1).

A trace is the ground-truth, chronologically ordered list of request and
response events observed by the trusted collector.  A request event is
``(REQ, rid, x)``; a response event is ``(RESP, rid, y)``.  The verifier
treats the trace as trusted; everything else (the advice) is not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple, Union

REQ = "REQ"
RESP = "RESP"


@dataclass(frozen=True)
class Request:
    """A client request: globally unique id, route, and input payload."""

    rid: str
    route: str
    payload: Tuple[Tuple[str, object], ...]

    @classmethod
    def make(cls, rid: str, route: str, **payload: object) -> "Request":
        return cls(rid, route, tuple(sorted(payload.items())))

    def payload_dict(self) -> Dict[str, object]:
        return dict(self.payload)

    @property
    def inputs(self) -> Dict[str, object]:
        return dict(self.payload)


@dataclass(frozen=True)
class TraceEvent:
    """One collector observation: kind is REQ or RESP."""

    kind: str
    rid: str
    data: object


@dataclass
class Trace:
    """Chronological list of trace events plus request lookup helpers.

    A *frozen* trace is an immutable snapshot: appends raise.  The
    collector hands frozen snapshots to auditors so later serving cannot
    mutate a trace already under audit; the epoch sealer uses the live
    view (``Collector.trace(live=True)``) to watch the stream grow.
    """

    events: List[TraceEvent] = field(default_factory=list)
    frozen: bool = field(default=False, compare=False)

    def append(self, event: TraceEvent) -> None:
        if self.frozen:
            raise TypeError("cannot append to a frozen trace snapshot")
        self.events.append(event)

    def freeze(self) -> "Trace":
        """An immutable snapshot of the current events (self, if already
        frozen)."""
        if self.frozen:
            return self
        return Trace(list(self.events), frozen=True)

    def slice(self, start: int, stop: int) -> "Trace":
        """A frozen sub-trace of events ``[start:stop)`` (epoch segment)."""
        return Trace(self.events[start:stop], frozen=True)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def request_ids(self) -> List[str]:
        return [e.rid for e in self.events if e.kind == REQ]

    def requests(self) -> List[Request]:
        return [e.data for e in self.events if e.kind == REQ]

    def request(self, rid: str) -> Request:
        for e in self.events:
            if e.kind == REQ and e.rid == rid:
                return e.data
        raise KeyError(rid)

    def response(self, rid: str) -> object:
        for e in self.events:
            if e.kind == RESP and e.rid == rid:
                return e.data
        raise KeyError(rid)

    def responses(self) -> Dict[str, object]:
        return {e.rid: e.data for e in self.events if e.kind == RESP}

    def is_balanced(self) -> bool:
        """Every request has exactly one response that follows its arrival,
        and no response lacks a request (Figure 14 line 19)."""
        pending: Dict[str, bool] = {}
        seen_resp: Dict[str, bool] = {}
        for e in self.events:
            if e.kind == REQ:
                if e.rid in pending or e.rid in seen_resp:
                    return False
                pending[e.rid] = True
            elif e.kind == RESP:
                if e.rid not in pending or e.rid in seen_resp:
                    return False
                seen_resp[e.rid] = True
            else:
                return False
        return len(pending) == len(seen_resp)

    @classmethod
    def from_events(cls, events: "TraceLike") -> "Trace":
        """Normalise a trace-like input: a :class:`Trace` passes through,
        any iterable of :class:`TraceEvent` (e.g. the storage layer's
        :func:`~repro.trace.codec.iter_trace_records` generator) is
        drained into a frozen trace.  This is how the verifier consumes a
        record stream without the codec materialising a list first."""
        if isinstance(events, Trace):
            return events
        return cls(list(events), frozen=True)

    def with_response(self, rid: str, data: object) -> "Trace":
        """A copy with ``rid``'s response replaced -- models a server that
        sent a different (bogus) response, for soundness tests."""
        out = Trace()
        for e in self.events:
            if e.kind == RESP and e.rid == rid:
                out.append(TraceEvent(RESP, rid, data))
            else:
                out.append(e)
        return out


# Anything the verifier accepts where a trace is expected: a Trace, or a
# (possibly lazy) iterable of events.  Normalised via Trace.from_events.
TraceLike = Union[Trace, Iterable[TraceEvent]]
