"""The trusted collector and request/response traces (paper section 2.1)."""

from repro.trace.trace import Request, Trace, TraceEvent, REQ, RESP
from repro.trace.collector import Collector

__all__ = ["Request", "Trace", "TraceEvent", "REQ", "RESP", "Collector"]
