"""The trusted collector (paper sections 1, 2.1, 2.2).

The collector sits logically in front of the server and records the ground
truth of what enters and leaves it.  In the original deployment this is a
TLS-terminating enclave or a bump-in-the-wire; here it is an in-process
observer that the KEM runtime notifies on request admission and response
emission.  The *trust* assumption is modelled by construction: the runtime
cannot rewrite history, only append, and adversarial servers in
``repro.attacks`` are modelled as producing bogus *responses and advice*,
never as corrupting the collector's record of what was actually sent.
"""

from __future__ import annotations

from typing import Optional

from repro.trace.trace import REQ, RESP, Request, Trace, TraceEvent


class Collector:
    """Appends REQ/RESP events in observation order.

    With a ``spool`` (a :class:`repro.storage.backend.RecordWriter`), every
    event is additionally spilled to the storage backend *as it is
    observed* -- the trace never needs to be re-serialised from memory,
    and a crash leaves at most one torn record (which the storage layer's
    tail recovery drops).  Call :meth:`seal_spool` once serving ends.
    """

    def __init__(self, spool: Optional[object] = None) -> None:
        self._trace = Trace()
        self._open = set()
        self._spool = spool
        if spool is not None:
            from repro.storage.records import pack_json
            from repro.trace.codec import RT_META, trace_meta_record

            spool.append(RT_META, trace_meta_record())
            self._pack_json = pack_json

    def _spill(self, event: TraceEvent) -> None:
        if self._spool is not None:
            from repro.trace.codec import RT_EVENT, encode_trace_event

            self._spool.append(RT_EVENT, self._pack_json(encode_trace_event(event)))

    def on_request(self, request: Request) -> None:
        if request.rid in self._open:
            raise ValueError(f"duplicate request id {request.rid}")
        self._open.add(request.rid)
        event = TraceEvent(REQ, request.rid, request)
        self._trace.append(event)
        self._spill(event)

    def on_response(self, rid: str, data: object) -> None:
        if rid not in self._open:
            raise ValueError(f"response for unknown/finished request {rid}")
        self._open.remove(rid)
        event = TraceEvent(RESP, rid, data)
        self._trace.append(event)
        self._spill(event)

    def seal_spool(self) -> None:
        """Durably finish the spilled trace stream (no-op without one)."""
        if self._spool is not None:
            self._spool.seal()
            self._spool = None

    @property
    def in_flight(self) -> int:
        return len(self._open)

    def trace(self, live: bool = False) -> Trace:
        """The trace collected so far.  Callers should only audit balanced
        traces (all requests answered); :meth:`Trace.is_balanced` checks.

        By default this is a *frozen snapshot*: later collection cannot
        mutate a trace already handed to an auditor.  ``live=True`` returns
        the growing trace itself -- the epoch sealer's escape hatch for
        watching the stream without copying it on every poll."""
        if live:
            return self._trace
        return self._trace.freeze()
