"""Epochs: sealed segments of the serving stream (DESIGN.md §6).

An :class:`Epoch` is one self-contained unit of continuous auditing: a
frozen, balanced trace segment, the matching advice slice, and the
half-open binlog sub-range ``[binlog_range[0], binlog_range[1])`` of
store writes installed during the segment.

Epochs come from two places:

* the online :class:`~repro.continuous.sealer.EpochSealer`, which cuts
  the live stream at quiescent points while the server keeps serving;
* :func:`slice_epochs`, which re-cuts a complete trace/advice pair
  offline.  Offline cuts are placed at *balanced* trace points; those
  coincide with quiescent points exactly when the trace was served with
  sealing enabled (the serve loop drains pending work before each cut,
  and drained cuts are the only balanced points such a schedule
  produces).  Slicing a trace served without sealing can cut where a
  responded request still had live activations; the audit of such a
  slice stays *sound* (nothing is trusted besides the trace and the
  previous checkpoint) but may reject an honest server -- hence the CLI
  pairs ``audit --epochs`` with ``serve --seal-every``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.advice.records import Advice
from repro.advice.slicing import slice_advice
from repro.trace.trace import REQ, RESP, Trace


@dataclass(frozen=True)
class Epoch:
    """One sealed segment of the serving stream."""

    index: int
    trace: Trace
    advice: Optional[Advice]
    binlog_range: Tuple[int, int] = (0, 0)

    def request_ids(self) -> List[str]:
        return self.trace.request_ids()

    @property
    def request_count(self) -> int:
        return len(self.trace.request_ids())

    def __repr__(self) -> str:
        return (
            f"<Epoch {self.index}: {self.request_count} requests, "
            f"{len(self.trace)} events>"
        )


def balanced_cuts(trace: Trace, epoch_size: int) -> List[int]:
    """Event indices at which ``trace`` can be cut into balanced segments
    of at least ``epoch_size`` responses each (the final cut is always
    ``len(trace)``)."""
    if epoch_size < 1:
        raise ValueError("epoch_size must be >= 1")
    cuts: List[int] = []
    open_rids: Set[str] = set()
    responses = 0
    for i, event in enumerate(trace.events):
        if event.kind == REQ:
            open_rids.add(event.rid)
        elif event.kind == RESP:
            open_rids.discard(event.rid)
            responses += 1
        if not open_rids and responses >= epoch_size:
            cuts.append(i + 1)
            responses = 0
    if not cuts or cuts[-1] != len(trace.events):
        cuts.append(len(trace.events))
    return cuts


def slice_epochs(
    trace: Trace, advice: Optional[Advice], epoch_size: int
) -> List[Epoch]:
    """Re-cut a complete trace/advice pair into epochs offline.

    Segments are balanced sub-traces of at least ``epoch_size`` responses
    (the tail may be shorter); each gets the advice slice of its request
    ids.  See the module docstring for when offline cuts are quiescent.
    """
    epochs: List[Epoch] = []
    start = 0
    for index, stop in enumerate(balanced_cuts(trace, epoch_size)):
        segment = trace.slice(start, stop)
        start = stop
        if not len(segment):
            continue
        rids = set(segment.request_ids())
        sliced = slice_advice(advice, rids) if advice is not None else None
        epochs.append(Epoch(index=len(epochs), trace=segment, advice=sliced))
    return epochs
