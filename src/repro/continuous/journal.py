"""Crash-resumable audit progress journal (DESIGN.md §6).

One event per record, appended and made *durable* (flush + fsync) as the
continuous audit progresses:

* ``{"event": "sealed",   "epoch": k, "requests": n}``
* ``{"event": "verified", "epoch": k, "digest": "..."}``
* ``{"event": "rejected", "epoch": k, "reason": "...", "detail": "..."}``

A restarted auditor loads the journal, finds the last verified epoch, and
resumes after it -- re-auditing nothing that already verified, provided
the checkpoint chain up to that epoch still verifies (a tampered
checkpoint store invalidates the journal's claim and the resume is
refused as ``checkpoint-chain-forged``).

Two persistence shapes, both on the storage layer's tolerant-load path:

* ``path`` (legacy): one JSONL file via :mod:`repro.storage.jsonl` --
  fsync per record, torn final line dropped on load, torn bytes
  overwritten by the next append;
* ``backend`` (a :class:`repro.storage.backend.StorageBackend`): a
  ``journal`` record stream with per-record fsync; the storage layer's
  CRC + torn-tail recovery provide the same guarantee.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.storage.backend import StorageBackend
from repro.storage.jsonl import JsonlAppender, load_jsonl_tolerant
from repro.storage.records import pack_json, unpack_json

STREAM_KIND = "journal"
STREAM_NAME = "journal"
RT_JOURNAL_EVENT = 1


class AuditJournal:
    """Append-only, fsync-per-record progress log; in-memory when neither
    ``path`` nor ``backend`` is given."""

    def __init__(
        self,
        path: Optional[str] = None,
        backend: Optional[StorageBackend] = None,
    ):
        if path is not None and backend is not None:
            raise ValueError("pass a path or a backend, not both")
        self.path = path
        self.backend = backend
        self._writer = None
        self._appender: Optional[JsonlAppender] = None
        self.events: List[Dict] = []
        if path is not None:
            resume_offset = None
            if os.path.exists(path):
                self.events, resume_offset = load_jsonl_tolerant(path)
            self._appender = JsonlAppender(path, resume_offset)
        elif backend is not None:
            for rtype, payload in backend.load_tolerant(STREAM_NAME, STREAM_KIND):
                if rtype == RT_JOURNAL_EVENT:
                    self.events.append(unpack_json(payload))

    def record(self, event: str, epoch: int, **fields: object) -> None:
        entry: Dict = {"event": event, "epoch": epoch}
        entry.update(fields)
        self.events.append(entry)
        if self._appender is not None:
            self._appender.append(entry)
        elif self.backend is not None:
            if self._writer is None:
                self._writer = self.backend.append(
                    STREAM_NAME, STREAM_KIND, fsync_every=True
                )
            self._writer.append(RT_JOURNAL_EVENT, pack_json(entry))

    def close(self) -> None:
        """Seal the backend stream (no-op for path/in-memory journals)."""
        if self._writer is not None:
            self._writer.seal()
            self._writer = None

    # -- resume queries ----------------------------------------------------

    def last_verified(self) -> int:
        """Highest epoch index with a contiguous verified prefix 0..k, or
        -1 if none: resumption must not trust a verified epoch whose
        predecessors are not all verified."""
        verified = {e["epoch"] for e in self.events if e["event"] == "verified"}
        last = -1
        while last + 1 in verified:
            last += 1
        return last

    def verified_digests(self) -> Dict[int, str]:
        """Checkpoint digest recorded at verification time, per epoch.
        These anchor resumption: a stored checkpoint whose digest was
        recomputed after forging its contents still chains internally,
        but cannot match the digest journalled when it was verified."""
        return {
            e["epoch"]: e["digest"]
            for e in self.events
            if e["event"] == "verified" and "digest" in e
        }

    def rejections(self) -> List[Dict]:
        return [e for e in self.events if e["event"] == "rejected"]
