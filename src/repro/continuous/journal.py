"""Crash-resumable audit progress journal (DESIGN.md §6).

One JSONL file, one event per line, appended and flushed as the
continuous audit progresses:

* ``{"event": "sealed",   "epoch": k, "requests": n}``
* ``{"event": "verified", "epoch": k, "digest": "..."}``
* ``{"event": "rejected", "epoch": k, "reason": "...", "detail": "..."}``

A restarted auditor loads the journal, finds the last verified epoch, and
resumes after it -- re-auditing nothing that already verified, provided
the checkpoint chain up to that epoch still verifies (a tampered
checkpoint store invalidates the journal's claim and the resume is
refused as ``checkpoint-chain-forged``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional


class AuditJournal:
    """Append-only JSONL progress log; in-memory when ``path`` is None."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.events: List[Dict] = []
        if path is not None and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        self.events.append(json.loads(line))

    def record(self, event: str, epoch: int, **fields: object) -> None:
        entry: Dict = {"event": event, "epoch": epoch}
        entry.update(fields)
        self.events.append(entry)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
                fh.flush()

    # -- resume queries ----------------------------------------------------

    def last_verified(self) -> int:
        """Highest epoch index with a contiguous verified prefix 0..k, or
        -1 if none: resumption must not trust a verified epoch whose
        predecessors are not all verified."""
        verified = {e["epoch"] for e in self.events if e["event"] == "verified"}
        last = -1
        while last + 1 in verified:
            last += 1
        return last

    def verified_digests(self) -> Dict[int, str]:
        """Checkpoint digest recorded at verification time, per epoch.
        These anchor resumption: a stored checkpoint whose digest was
        recomputed after forging its contents still chains internally,
        but cannot match the digest journalled when it was verified."""
        return {
            e["epoch"]: e["digest"]
            for e in self.events
            if e["event"] == "verified" and "digest" in e
        }

    def rejections(self) -> List[Dict]:
        return [e for e in self.events if e["event"] == "rejected"]
