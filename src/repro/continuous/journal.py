"""Crash-resumable audit progress journal (DESIGN.md §6).

One event per record, appended and made *durable* (flush + fsync) as the
continuous audit progresses:

* ``{"event": "sealed",   "epoch": k, "requests": n}``
* ``{"event": "verified", "epoch": k, "digest": "..."}``
* ``{"event": "rejected", "epoch": k, "reason": "...", "detail": "..."}``

A restarted auditor loads the journal, finds the last verified epoch, and
resumes after it -- re-auditing nothing that already verified, provided
the checkpoint chain up to that epoch still verifies (a tampered
checkpoint store invalidates the journal's claim and the resume is
refused as ``checkpoint-chain-forged``).

Two persistence shapes:

* ``path`` (legacy): one JSONL file.  Each record is fsynced before
  :meth:`record` returns, and a torn final line (the shape a kill
  mid-write leaves) is dropped on load -- resume never trusts a partial
  record, and the next append overwrites the torn bytes.
* ``backend`` (a :class:`repro.storage.backend.StorageBackend`): a
  ``journal`` record stream with per-record fsync; the storage layer's
  CRC + torn-tail recovery provide the same guarantee.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.storage.backend import StorageBackend
from repro.storage.records import pack_json, unpack_json

STREAM_KIND = "journal"
STREAM_NAME = "journal"
RT_JOURNAL_EVENT = 1


class AuditJournal:
    """Append-only, fsync-per-record progress log; in-memory when neither
    ``path`` nor ``backend`` is given."""

    def __init__(
        self,
        path: Optional[str] = None,
        backend: Optional[StorageBackend] = None,
    ):
        if path is not None and backend is not None:
            raise ValueError("pass a path or a backend, not both")
        self.path = path
        self.backend = backend
        self._writer = None
        self._resume_offset: Optional[int] = None
        self.events: List[Dict] = []
        if path is not None and os.path.exists(path):
            self._load_jsonl(path)
        elif backend is not None:
            for rtype, payload in backend.load_tolerant(STREAM_NAME, STREAM_KIND):
                if rtype == RT_JOURNAL_EVENT:
                    self.events.append(unpack_json(payload))

    def _load_jsonl(self, path: str) -> None:
        """Parse the JSONL journal, dropping a torn final line.

        A process killed mid-append leaves a partial last line; trusting
        it would be resuming from state that was never durably recorded.
        Damage anywhere *before* the final line is not a torn tail and
        still raises.
        """
        with open(path, "rb") as fh:
            raw = fh.read()
        offset = 0
        lines = raw.split(b"\n")
        for i, line in enumerate(lines):
            # Only a newline-terminated line was durably completed; the
            # final segment of a newline-free tail is suspect even when
            # it happens to parse.
            complete = i < len(lines) - 1
            stripped = line.strip()
            if stripped:
                try:
                    entry = json.loads(stripped.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    if complete:
                        raise
                    self._resume_offset = offset
                    return
                if not complete:
                    self._resume_offset = offset
                    return
                self.events.append(entry)
            offset += len(line) + 1

    def record(self, event: str, epoch: int, **fields: object) -> None:
        entry: Dict = {"event": event, "epoch": epoch}
        entry.update(fields)
        self.events.append(entry)
        if self.path is not None:
            mode = "r+b" if self._resume_offset is not None else "ab"
            with open(self.path, mode) as fh:
                if self._resume_offset is not None:
                    fh.truncate(self._resume_offset)
                    fh.seek(self._resume_offset)
                    self._resume_offset = None
                fh.write(
                    (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
                )
                fh.flush()
                # Crash-resume contract: once record() returns, the entry
                # survives a kill -- flush alone leaves it in the page
                # cache, where a crash can still tear it.
                os.fsync(fh.fileno())
        elif self.backend is not None:
            if self._writer is None:
                self._writer = self.backend.append(
                    STREAM_NAME, STREAM_KIND, fsync_every=True
                )
            self._writer.append(RT_JOURNAL_EVENT, pack_json(entry))

    def close(self) -> None:
        """Seal the backend stream (no-op for path/in-memory journals)."""
        if self._writer is not None:
            self._writer.seal()
            self._writer = None

    # -- resume queries ----------------------------------------------------

    def last_verified(self) -> int:
        """Highest epoch index with a contiguous verified prefix 0..k, or
        -1 if none: resumption must not trust a verified epoch whose
        predecessors are not all verified."""
        verified = {e["epoch"] for e in self.events if e["event"] == "verified"}
        last = -1
        while last + 1 in verified:
            last += 1
        return last

    def verified_digests(self) -> Dict[int, str]:
        """Checkpoint digest recorded at verification time, per epoch.
        These anchor resumption: a stored checkpoint whose digest was
        recomputed after forging its contents still chains internally,
        but cannot match the digest journalled when it was verified."""
        return {
            e["epoch"]: e["digest"]
            for e in self.events
            if e["event"] == "verified" and "digest" in e
        }

    def rejections(self) -> List[Dict]:
        return [e for e in self.events if e["event"] == "rejected"]
