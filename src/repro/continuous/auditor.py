"""The continuous auditor: a bounded queue of sealed epochs (DESIGN.md §6).

:class:`ContinuousAuditor` consumes :class:`~repro.continuous.epoch.Epoch`
objects -- typically as the :class:`~repro.continuous.sealer.EpochSealer`'s
sink, so verification overlaps serving -- and drives each through the
existing :class:`~repro.verifier.audit.Auditor`:

* epoch 0 audits from genesis; epoch k > 0 audits with the *carry-in*
  state of checkpoint k-1 (:class:`~repro.verifier.carry.CarryIn`);
* an accepted epoch yields a checkpoint (extracted from re-execution,
  chained by digest) and a ``verified`` journal entry;
* a rejected epoch stops the stream: later epochs are not audited (their
  initial state is unverifiable) and report ``predecessor-rejected``.

The pending queue is bounded (``max_pending``): submitting past the bound
audits the oldest epoch synchronously first, which is the backpressure
that keeps a continuous audit's memory footprint O(epoch) instead of
O(trace).  Progress survives crashes via the journal + checkpoint store:
a new auditor over the same stores resumes after the last verified epoch,
after re-verifying the stored checkpoint chain (a tampered store is
refused as ``checkpoint-chain-forged``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Union

from repro.continuous.checkpoint import (
    Checkpoint,
    CheckpointChainError,
    CheckpointStore,
)
from repro.continuous.epoch import Epoch
from repro.continuous.journal import AuditJournal
from repro.kem.program import AppSpec
from repro.obs import MetricsRegistry, NamespacedMetrics, ensure_metrics
from repro.verifier.audit import Auditor, AuditResult
from repro.verifier.pipeline import StageHook


@dataclass
class EpochVerdict:
    """One epoch's audit outcome within the stream."""

    epoch: int
    result: AuditResult
    checkpoint_digest: Optional[str] = None

    @property
    def accepted(self) -> bool:
        return self.result.accepted

    def __repr__(self) -> str:
        verdict = (
            "ACCEPT" if self.accepted else f"REJECT({self.result.reason})"
        )
        return f"<EpochVerdict epoch={self.epoch} {verdict}>"


class ContinuousAuditor:
    """Streams sealed epochs through per-epoch audits with checkpoints."""

    def __init__(
        self,
        app: AppSpec,
        parallelism: int = 1,
        parallel_mode: str = "auto",
        max_pending: int = 4,
        checkpoints: Optional[CheckpointStore] = None,
        journal: Optional[AuditJournal] = None,
        metrics: Optional[MetricsRegistry] = None,
        progress: Optional[StageHook] = None,
        dedup: Optional[object] = None,
        partition: Optional[str] = None,
        hints: Optional[object] = None,
        scheduler: Optional[str] = None,
        node_journal: Optional[object] = None,
        namespace: Optional[str] = None,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.app = app
        self.parallelism = parallelism
        self.parallel_mode = parallel_mode
        # Several auditors sharing one registry (the fleet service, or
        # any two instances in one process) must not sum each other's
        # ``continuous.*`` counters: a namespace scopes every metric this
        # instance records to ``<namespace>.<name>``.
        self.namespace = namespace or ""
        # Static scheduling/dedup hints are app-level, so one StaticHints
        # serves every epoch (see DESIGN.md §12).
        self.partition = partition
        self.hints = hints
        # One Deduplicator shared across every epoch's Auditor: digests
        # cover the carry-in state (checkpoint-anchored), so a group that
        # recurs in a later epoch under the same carried values is a hit.
        self.dedup = dedup
        # A non-pipeline scheduler routes every per-epoch audit through
        # the DAG driver (repro.verifier.dag); with a node journal, a
        # mid-epoch kill resumes at node granularity inside the epoch the
        # journal-level resume re-audits ("auto": a journal left by a
        # different epoch's plan is discarded, not trusted).
        self.scheduler = scheduler
        self.node_journal = node_journal
        self.max_pending = max_pending
        self.metrics = ensure_metrics(metrics)
        if self.namespace:
            self.metrics = NamespacedMetrics(self.namespace, self.metrics)
        self.progress = progress
        self.checkpoints = checkpoints if checkpoints is not None else CheckpointStore()
        self.journal = journal if journal is not None else AuditJournal()
        self.verdicts: Dict[int, EpochVerdict] = {}
        self._queue: Deque[Epoch] = deque()
        self._failed: Optional[EpochVerdict] = None
        self._chain_error: Optional[str] = None
        self.peak_pending = 0
        self.backpressure_events = 0
        self.skipped_resumed = 0
        self.first_verdict_seconds: Optional[float] = None
        self._t0: Optional[float] = None
        # Resume: trust the journal's verified prefix only as far as the
        # stored checkpoint chain actually verifies.
        self._next_index = 0
        last = self.journal.last_verified()
        if last >= 0:
            try:
                self.checkpoints.verify_chain(last)
                # The chain being internally consistent is not enough: a
                # forger can recompute digests.  Anchor each stored
                # checkpoint to the digest journalled when it verified.
                recorded = self.journal.verified_digests()
                for index in range(last + 1):
                    stored = self.checkpoints.get(index)
                    if stored is None or stored.digest != recorded.get(index):
                        raise CheckpointChainError(
                            f"checkpoint {index} does not match the digest "
                            "journalled at verification time"
                        )
            except CheckpointChainError as exc:
                self._chain_error = str(exc)
            else:
                self._next_index = last + 1

    # -- stream interface ----------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def accepted(self) -> bool:
        return (
            self._failed is None
            and self._chain_error is None
            and all(v.accepted for v in self.verdicts.values())
        )

    @property
    def first_rejection(self) -> Optional[EpochVerdict]:
        return self._failed

    def submit(self, epoch: Epoch) -> None:
        """Enqueue a sealed epoch; audits the oldest pending epoch first
        when the queue is full (backpressure)."""
        if self._t0 is None:
            self._t0 = time.perf_counter()
        if epoch.index < self._next_index and epoch.index not in self.verdicts:
            # Already verified in a previous run (journal + chain agree).
            self.skipped_resumed += 1
            return
        self.journal.record("sealed", epoch.index, requests=epoch.request_count)
        self._queue.append(epoch)
        while len(self._queue) > self.max_pending:
            self.backpressure_events += 1
            self.step()
        self.peak_pending = max(self.peak_pending, len(self._queue))

    def step(self) -> Optional[EpochVerdict]:
        """Audit the oldest pending epoch; None if the queue is empty."""
        if not self._queue:
            return None
        epoch = self._queue.popleft()
        verdict = self._audit_epoch(epoch)
        self._record_verdict(epoch, verdict)
        return verdict

    def _record_verdict(self, epoch: Epoch, verdict: EpochVerdict) -> None:
        """Account a finished epoch: verdict table plus stream metrics.
        Split from :meth:`step` so drivers that audit epochs outside the
        pending queue (the fleet service's shared pool) account the same
        way."""
        self.verdicts[epoch.index] = verdict
        if self.first_verdict_seconds is None and self._t0 is not None:
            self.first_verdict_seconds = time.perf_counter() - self._t0
        self.metrics.counter("continuous.epochs").inc()
        if verdict.accepted:
            self.metrics.counter("continuous.epochs_accepted").inc()
        stats = verdict.result.stats
        self.metrics.series("continuous.epoch_seconds").point(
            epoch.index, stats.get("elapsed_seconds", 0.0)
        )
        self.metrics.series("continuous.epoch_handlers").point(
            epoch.index, stats.get("handlers_executed", 0)
        )
        self.metrics.gauge("continuous.peak_pending").set_max(self.peak_pending)

    def drain(self) -> List[EpochVerdict]:
        """Audit everything pending; verdicts in epoch order."""
        while self._queue:
            self.step()
        return [self.verdicts[i] for i in sorted(self.verdicts)]

    def run(self, epochs: Iterable[Epoch]) -> List[EpochVerdict]:
        """Submit a pre-sealed epoch sequence and drain (the offline mode
        used by ``audit --epochs``).

        ``epochs`` may be a lazy iterator (e.g.
        :func:`repro.continuous.codec.iter_epochs_stored`): combined with
        the bounded pending queue, at most ``max_pending + 1`` epochs are
        ever resident, so auditing a stored stream is O(epoch) in memory,
        not O(trace)."""
        for epoch in epochs:
            self.submit(epoch)
        return self.drain()

    # -- one epoch ----------------------------------------------------------

    def _audit_epoch(self, epoch: Epoch) -> EpochVerdict:
        verdict, parent = self._preflight(epoch)
        if verdict is not None:
            return verdict
        auditor = self._build_auditor(epoch, parent)
        result = auditor.run()
        return self._commit(epoch, result, auditor.checkpoint)

    def _preflight(
        self, epoch: Epoch
    ) -> tuple[Optional[EpochVerdict], Optional[Checkpoint]]:
        """Checks that precede any re-execution.  Returns
        ``(verdict, parent)``: a non-None verdict short-circuits the
        audit (chain forged, predecessor rejected, missing checkpoint);
        otherwise ``parent`` is the carry-in checkpoint (None at epoch
        0)."""
        if self._chain_error is not None:
            return (
                self._reject(epoch, "checkpoint-chain-forged", self._chain_error),
                None,
            )
        if self._failed is not None:
            return (
                self._reject(
                    epoch,
                    "predecessor-rejected",
                    f"epoch {self._failed.epoch} rejected "
                    f"({self._failed.result.reason}); initial state unverifiable",
                ),
                None,
            )
        parent: Optional[Checkpoint] = None
        if epoch.index > 0:
            parent = self.checkpoints.get(epoch.index - 1)
            if parent is None:
                return (
                    self._reject(
                        epoch,
                        "missing-checkpoint",
                        f"no verified checkpoint for epoch {epoch.index - 1}",
                    ),
                    None,
                )
        return None, parent

    def _epoch_progress(self, epoch: Epoch) -> Optional[StageHook]:
        if self.progress is None:
            return None
        outer, index = self.progress, epoch.index
        return lambda stage, secs: outer(f"epoch[{index}].{stage}", secs)

    def _auditor_kwargs(self, epoch: Epoch, parent: Optional[Checkpoint]) -> dict:
        """The per-epoch audit configuration, shared between the inline
        :class:`Auditor` built here and any external driver (the fleet
        service compiles the same epoch to a DAG with these kwargs)."""
        return dict(
            parallelism=self.parallelism,
            parallel_mode=self.parallel_mode,
            partition=self.partition,
            hints=self.hints,
            carry=parent.carry_in() if parent is not None else None,
            metrics=self.metrics,
            progress=self._epoch_progress(epoch),
            checkpoint_index=epoch.index,
            checkpoint_parent=parent,
            dedup=self.dedup,
            scheduler=self.scheduler,
            node_journal=self.node_journal,
            resume="auto" if self.node_journal is not None else False,
        )

    def _build_auditor(
        self, epoch: Epoch, parent: Optional[Checkpoint]
    ) -> Auditor:
        # The pipeline's checkpoint stage is armed with this epoch's index
        # and parent: an accepted run leaves the digest-chained checkpoint
        # in ``auditor.checkpoint``; an unextractable one rejects as
        # ``checkpoint-unextractable`` through the shared verdict mapping.
        return Auditor(
            self.app,
            epoch.trace,
            epoch.advice,
            **self._auditor_kwargs(epoch, parent),
        )

    def _commit(
        self,
        epoch: Epoch,
        result: AuditResult,
        checkpoint: Optional[Checkpoint],
    ) -> EpochVerdict:
        """Journal the verdict and, on accept, extend the checkpoint
        chain."""
        if not result.accepted:
            verdict = EpochVerdict(epoch.index, result)
            self._failed = verdict
            self.journal.record(
                "rejected", epoch.index, reason=result.reason, detail=result.detail
            )
            return verdict
        self.checkpoints.put(checkpoint)
        self.journal.record("verified", epoch.index, digest=checkpoint.digest)
        return EpochVerdict(
            epoch.index, result, checkpoint_digest=checkpoint.digest
        )

    def _reject(self, epoch: Epoch, reason: str, detail: str) -> EpochVerdict:
        verdict = EpochVerdict(
            epoch.index, AuditResult(accepted=False, reason=reason, detail=detail)
        )
        if self._failed is None and reason != "predecessor-rejected":
            self._failed = verdict
        self.journal.record("rejected", epoch.index, reason=reason, detail=detail)
        return verdict

    # -- aggregation ---------------------------------------------------------

    def stats(self) -> Dict[str, Union[int, float]]:
        """Aggregate statistics across audited epochs.

        Count-valued keys share their names (and int-ness) with
        :func:`~repro.verifier.pipeline.collect_stats`, so per-epoch and
        stream-level statistics line up key-for-key;
        ``first_verdict_seconds`` (time to the first verdict, the
        continuous-audit latency metric) is reported *alongside* the
        summed ``elapsed_seconds``, not instead of it."""
        out: Dict[str, Union[int, float]] = {
            "epochs": len(self.verdicts),
            "epochs_accepted": sum(
                1 for v in self.verdicts.values() if v.accepted
            ),
            "peak_pending": self.peak_pending,
            "backpressure_events": self.backpressure_events,
            "elapsed_seconds": float(
                sum(
                    v.result.stats.get("elapsed_seconds", 0.0)
                    for v in self.verdicts.values()
                )
            ),
        }
        for key in ("graph_nodes", "graph_edges", "groups", "handlers_executed"):
            out[key] = int(
                sum(v.result.stats.get(key, 0) for v in self.verdicts.values())
            )
        if self.first_verdict_seconds is not None:
            out["first_verdict_seconds"] = self.first_verdict_seconds
        return out
