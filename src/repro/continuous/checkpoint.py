"""Verified end-of-epoch state, chained by digest (DESIGN.md §6).

A :class:`Checkpoint` records what epoch *k*'s accepted audit proved about
the server's state at the seal point: the final value of every loggable
variable and the committed KV store contents.  Both are extracted from
*re-execution* (the verifier's own computation), never copied from the
advice: variable values come from walking the reconstructed write history
(initializer -> write_observer chain) into the variable dictionary, and
the KV state from replaying the verified write order over the previous
checkpoint's KV map.

Checkpoints form a hash chain: ``digest = H(index, parent_digest, vars,
kv)`` with the genesis parent a fixed constant.  Epoch *k+1*'s audit
initialises from checkpoint *k* (see :class:`repro.verifier.carry.CarryIn`),
so trust in a continuous audit reduces to trust in the chain: resuming
from storage re-verifies every digest, and a tampered stored checkpoint is
rejected as ``checkpoint-chain-forged`` before any epoch is re-audited.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import KarousosError
from repro.storage.backend import StorageBackend
from repro.storage.values import decode_value, encode_value
from repro.server.variables import INIT_HID, INIT_RID, INIT_REF
from repro.verifier.carry import CarryIn
from repro.verifier.preprocess import AuditState
from repro.verifier.reexec import ReExecutor
from repro.verifier.state import VarState

GENESIS_DIGEST = "genesis"


class CheckpointError(KarousosError):
    """A checkpoint could not be extracted, stored, or verified."""


class CheckpointChainError(CheckpointError):
    """A stored checkpoint chain fails digest verification (forgery)."""


def _canonical(value: object) -> object:
    """Encoded value with dict pair lists sorted, so the digest does not
    depend on insertion order."""
    encoded = encode_value(value)
    return _sort_encoded(encoded)


def _sort_encoded(doc: object) -> object:
    if isinstance(doc, dict):
        if doc.get("t") == "d":
            pairs = [
                [_sort_encoded(k), _sort_encoded(v)] for k, v in doc["v"]
            ]
            pairs.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
            return {"t": "d", "v": pairs}
        if "v" in doc:
            return {**doc, "v": _sort_encoded(doc["v"])}
        return doc
    if isinstance(doc, list):
        return [_sort_encoded(x) for x in doc]
    return doc


def compute_digest(
    index: int, parent_digest: str, vars: Dict[str, object], kv: Dict[str, object]
) -> str:
    doc = {
        "index": index,
        "parent": parent_digest,
        "vars": sorted(
            ([var_id, _canonical(value)] for var_id, value in vars.items()),
            key=lambda pair: pair[0],
        ),
        "kv": sorted(
            ([key, _canonical(value)] for key, value in kv.items()),
            key=lambda pair: pair[0],
        ),
    }
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """Verified state at the end of one epoch."""

    epoch: int
    parent_digest: str
    vars: Dict[str, object]
    kv: Dict[str, object]
    digest: str

    @classmethod
    def make(
        cls,
        epoch: int,
        parent_digest: str,
        vars: Dict[str, object],
        kv: Dict[str, object],
    ) -> "Checkpoint":
        return cls(
            epoch=epoch,
            parent_digest=parent_digest,
            vars=dict(vars),
            kv=dict(kv),
            digest=compute_digest(epoch, parent_digest, vars, kv),
        )

    def verify(self) -> bool:
        return self.digest == compute_digest(
            self.epoch, self.parent_digest, self.vars, self.kv
        )

    def carry_in(self) -> CarryIn:
        return CarryIn(vars=dict(self.vars), kv=dict(self.kv))


# -- extraction from an accepted audit ---------------------------------------


def _final_var_value(var: VarState) -> object:
    """The value left by the last write in the reconstructed history chain.

    The chain starts at the initializer (the init pseudo-write unless the
    epoch's first write had no predecessor) and follows ``write_observer``;
    for an accepted audit of an honest epoch this is the total order of
    writes, so the chain's endpoint is the server's cell value at seal
    time.  The walk is bounded; a cyclic chain (impossible after an
    accepted audit) raises :class:`CheckpointError`.
    """
    key = var.initializer if var.initializer is not None else INIT_REF
    for _ in range(len(var.write_observer) + 1):
        nxt = var.write_observer.get(key)
        if nxt is None:
            break
        key = nxt
    else:
        raise CheckpointError(
            f"variable {var.var_id!r}: write history chain does not terminate"
        )
    if key == INIT_REF:
        return var.var_dict[(INIT_RID, INIT_HID)][0][1]
    rid, hid, opnum = key
    for w_opnum, value in var.var_dict.get((rid, hid), []):
        if w_opnum == opnum:
            return value
    raise CheckpointError(
        f"variable {var.var_id!r}: chain ends at {key} but no such write "
        f"re-executed"
    )


def checkpoint_from_audit(
    index: int,
    parent: Optional[Checkpoint],
    state: AuditState,
    re_exec: ReExecutor,
) -> Checkpoint:
    """Extract epoch ``index``'s checkpoint from its accepted audit.

    ``parent`` is epoch ``index - 1``'s checkpoint (None at genesis): its
    KV map is the base the epoch's verified write order is replayed over.
    """
    vars: Dict[str, object] = {}
    for var_id, var in re_exec.vars.items():
        if isinstance(var, VarState):
            vars[var_id] = _final_var_value(var)
        # Plain (non-loggable) variables are per-request on the verifier
        # side -- nothing crosses a request boundary, so nothing to carry.
    kv: Dict[str, object] = dict(parent.kv) if parent is not None else {}
    kv.update(state.initial_kv)
    for rid, tid, i in state.advice.write_order:
        entry = state.advice.tx_logs[(rid, tid)][i]
        kv[entry.key] = entry.opcontents
    parent_digest = parent.digest if parent is not None else GENESIS_DIGEST
    return Checkpoint.make(index, parent_digest, vars, kv)


# -- storage -------------------------------------------------------------------


def encode_checkpoint(cp: Checkpoint) -> str:
    doc = {
        "epoch": cp.epoch,
        "parent": cp.parent_digest,
        "vars": [[k, encode_value(v)] for k, v in sorted(cp.vars.items())],
        "kv": [[k, encode_value(v)] for k, v in sorted(cp.kv.items())],
        "digest": cp.digest,
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def decode_checkpoint(payload: str) -> Checkpoint:
    try:
        doc = json.loads(payload)
        return Checkpoint(
            epoch=doc["epoch"],
            parent_digest=doc["parent"],
            vars={k: decode_value(v) for k, v in doc["vars"]},
            kv={k: decode_value(v) for k, v in doc["kv"]},
            digest=doc["digest"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint: {exc}") from exc


STREAM_KIND = "checkpoint"
STREAM_NAME = "checkpoints"
RT_CHECKPOINT = 1


class CheckpointStore:
    """Checkpoints by epoch index, optionally persisted.

    Two persistence shapes, both behind the same interface:

    * ``directory`` (legacy): one ``checkpoint-<index>.json`` per epoch,
      rewritten atomically on :meth:`put`;
    * ``backend`` (a :class:`repro.storage.backend.StorageBackend`): one
      append-only ``checkpoints`` record stream, one record per
      :meth:`put`, fsynced per record so a crash can never tear a
      checkpoint the journal already references.  Reopening replays the
      stream (later records for an index win) and recovers a torn tail.

    Either way :meth:`verify_chain` recomputes every digest and checks
    the parent links, so tampering with stored state is detected before
    any carried value is trusted.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        backend: Optional[StorageBackend] = None,
    ):
        if directory is not None and backend is not None:
            raise ValueError("pass a directory or a backend, not both")
        self.directory = directory
        self.backend = backend
        self._writer = None
        self._by_index: Dict[int, Checkpoint] = {}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            for name in os.listdir(directory):
                if not (name.startswith("checkpoint-") and name.endswith(".json")):
                    continue
                path = os.path.join(directory, name)
                with open(path, "r", encoding="utf-8") as fh:
                    cp = decode_checkpoint(fh.read())
                self._by_index[cp.epoch] = cp
        elif backend is not None:
            for rtype, payload in backend.load_tolerant(STREAM_NAME, STREAM_KIND):
                if rtype != RT_CHECKPOINT:
                    raise CheckpointError(
                        f"unexpected checkpoint record type {rtype}"
                    )
                cp = decode_checkpoint(payload.decode("utf-8"))
                self._by_index[cp.epoch] = cp

    def __len__(self) -> int:
        return len(self._by_index)

    def __contains__(self, index: int) -> bool:
        return index in self._by_index

    def get(self, index: int) -> Optional[Checkpoint]:
        return self._by_index.get(index)

    def put(self, cp: Checkpoint) -> None:
        self._by_index[cp.epoch] = cp
        if self.directory is not None:
            path = os.path.join(self.directory, f"checkpoint-{cp.epoch}.json")
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(encode_checkpoint(cp))
            os.replace(tmp, path)
        elif self.backend is not None:
            if self._writer is None:
                # fsync_every: a "verified" journal entry must never
                # reference a checkpoint the store could still lose.
                self._writer = self.backend.append(
                    STREAM_NAME, STREAM_KIND, fsync_every=True
                )
            self._writer.append(
                RT_CHECKPOINT, encode_checkpoint(cp).encode("utf-8")
            )

    def close(self) -> None:
        """Seal the backend stream (no-op for directory/in-memory stores)."""
        if self._writer is not None:
            self._writer.seal()
            self._writer = None

    def latest(self) -> Optional[Checkpoint]:
        if not self._by_index:
            return None
        return self._by_index[max(self._by_index)]

    def verify_chain(self, up_to: Optional[int] = None) -> None:
        """Check digests and parent links for epochs ``0..up_to`` (all
        stored epochs if None); raise :class:`CheckpointChainError` on the
        first inconsistency."""
        if up_to is None:
            up_to = max(self._by_index, default=-1)
        parent = GENESIS_DIGEST
        for index in range(up_to + 1):
            cp = self._by_index.get(index)
            if cp is None:
                raise CheckpointChainError(f"checkpoint {index} missing from chain")
            if cp.parent_digest != parent:
                raise CheckpointChainError(
                    f"checkpoint {index} parent digest does not match "
                    f"checkpoint {index - 1}"
                )
            if not cp.verify():
                raise CheckpointChainError(
                    f"checkpoint {index} digest does not match its contents"
                )
            parent = cp.digest
