"""Continuous auditing: epoch-sealed streaming verification (DESIGN.md §6).

The monolithic audit (``repro.verifier``) verifies a complete served
trace after the fact.  This package turns it into a *continuous* pipeline:
the live stream is cut at transaction-quiescent points into sealed
:class:`Epoch` objects, each epoch is audited against the previous
epoch's verified :class:`Checkpoint` (digest-chained end-of-epoch state),
and progress is journalled so a crashed audit resumes from the last
verified checkpoint instead of restarting.
"""

from repro.continuous.auditor import ContinuousAuditor, EpochVerdict
from repro.continuous.checkpoint import (
    GENESIS_DIGEST,
    Checkpoint,
    CheckpointChainError,
    CheckpointError,
    CheckpointStore,
    checkpoint_from_audit,
    compute_digest,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.continuous.codec import (
    decode_epoch,
    encode_epoch,
    iter_epochs,
    iter_epochs_stored,
    read_epoch_stream,
    read_epochs,
    write_epoch,
    write_epoch_stored,
)
from repro.continuous.epoch import Epoch, balanced_cuts, slice_epochs
from repro.continuous.journal import AuditJournal
from repro.continuous.sealer import EpochSealer

__all__ = [
    "AuditJournal",
    "Checkpoint",
    "CheckpointChainError",
    "CheckpointError",
    "CheckpointStore",
    "ContinuousAuditor",
    "Epoch",
    "EpochSealer",
    "EpochVerdict",
    "GENESIS_DIGEST",
    "balanced_cuts",
    "checkpoint_from_audit",
    "compute_digest",
    "decode_checkpoint",
    "decode_epoch",
    "encode_checkpoint",
    "encode_epoch",
    "iter_epochs",
    "iter_epochs_stored",
    "read_epoch_stream",
    "read_epochs",
    "slice_epochs",
    "write_epoch",
    "write_epoch_stored",
]
