"""Online epoch sealing (DESIGN.md §6).

The :class:`EpochSealer` attaches to a KEM runtime and watches the live
collector stream.  Once ``seal_every`` responses have been emitted since
the last cut, the serve loop stops admitting new requests, drains to a
quiescent point (no in-flight request, no pending activation, no open
store transaction -- :meth:`Runtime.quiescent`), and calls :meth:`seal`:
the events since the last cut become a frozen trace segment, the advice
collected for exactly those requests is sliced out
(:func:`repro.advice.slicing.slice_advice`), and the pair is published as
an :class:`~repro.continuous.epoch.Epoch` -- optionally pushed into a
``sink`` (e.g. :meth:`ContinuousAuditor.submit <repro.continuous.auditor.
ContinuousAuditor.submit>`) so verification starts while the server keeps
serving.

Quiescence is what makes a cut *sound to audit in isolation*: nothing
spans the boundary except committed state, so the epoch's advice slice
plus the previous checkpoint fully determine its re-execution.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.advice.slicing import slice_advice
from repro.continuous.epoch import Epoch
from repro.trace.trace import RESP


class EpochSealer:
    """Cuts the live stream into epochs at quiescent points."""

    def __init__(
        self,
        seal_every: int,
        sink: Optional[Callable[[Epoch], None]] = None,
    ):
        if seal_every < 1:
            raise ValueError("seal_every must be >= 1")
        self.seal_every = seal_every
        self.sink = sink
        self.epochs: List[Epoch] = []
        self.runtime = None
        self._cut = 0  # first trace event index not yet sealed
        self._binlog_cut = 0

    def attach(self, runtime) -> "EpochSealer":
        """Register with ``runtime`` so its serve loop drains and seals."""
        self.runtime = runtime
        runtime.sealer = self
        return self

    # -- hooks called by Runtime.serve ------------------------------------

    def seal_due(self) -> bool:
        """True once the unsealed suffix holds ``seal_every`` responses."""
        events = self.runtime.collector.trace(live=True).events
        responses = sum(1 for e in events[self._cut :] if e.kind == RESP)
        return responses >= self.seal_every

    def seal(self) -> Optional[Epoch]:
        """Cut an epoch at the current (quiescent) point.  Returns the new
        epoch, or None if nothing happened since the last cut."""
        runtime = self.runtime
        trace = runtime.collector.trace(live=True)
        segment = trace.slice(self._cut, len(trace.events))
        if not len(segment):
            return None
        rids: Set[str] = set(segment.request_ids())
        advice = runtime.policy.advice()
        if advice is not None:
            advice = slice_advice(advice, rids)
        binlog_len = (
            len(runtime.store.binlog) if runtime.store is not None else 0
        )
        epoch = Epoch(
            index=len(self.epochs),
            trace=segment,
            advice=advice,
            binlog_range=(self._binlog_cut, binlog_len),
        )
        self._cut = len(trace.events)
        self._binlog_cut = binlog_len
        self.epochs.append(epoch)
        if self.sink is not None:
            self.sink(epoch)
        return epoch

    def flush(self) -> Optional[Epoch]:
        """Seal whatever remains after serving finished (the tail epoch).

        The runtime is quiescent once :meth:`Runtime.serve` returns, so
        the tail cut is as sound as any mid-stream cut.
        """
        return self.seal()
