"""Wire format for sealed epochs.

An epoch document embeds the trace segment and advice slice in their own
versioned wire formats (:mod:`repro.trace.codec`, :mod:`repro.advice.codec`)
plus the epoch index and binlog sub-range, so ``serve --seal-every N
--out-epochs DIR`` and ``audit --epochs-dir DIR`` can hand epochs across
processes one file at a time.
"""

from __future__ import annotations

import json
import os
import re
from typing import List

from repro.advice.codec import decode_advice, encode_advice
from repro.continuous.epoch import Epoch
from repro.errors import AdviceFormatError
from repro.trace.codec import decode_trace, encode_trace

EPOCH_FORMAT_VERSION = 1

_EPOCH_FILE = re.compile(r"^epoch-(\d+)\.json$")


def encode_epoch(epoch: Epoch) -> str:
    doc = {
        "version": EPOCH_FORMAT_VERSION,
        "index": epoch.index,
        "binlog_range": list(epoch.binlog_range),
        "trace": json.loads(encode_trace(epoch.trace)),
        "advice": (
            None if epoch.advice is None else json.loads(encode_advice(epoch.advice))
        ),
    }
    return json.dumps(doc, separators=(",", ":"))


def decode_epoch(payload: str) -> Epoch:
    try:
        doc = json.loads(payload)
    except (TypeError, ValueError) as exc:
        raise AdviceFormatError(f"epoch is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != EPOCH_FORMAT_VERSION:
        raise AdviceFormatError("unsupported epoch document")
    index = doc.get("index")
    if not isinstance(index, int) or index < 0:
        raise AdviceFormatError("bad epoch index")
    rng = doc.get("binlog_range")
    if (
        not isinstance(rng, list)
        or len(rng) != 2
        or not all(isinstance(x, int) for x in rng)
    ):
        raise AdviceFormatError("bad epoch binlog range")
    trace = decode_trace(json.dumps(doc.get("trace"))).freeze()
    advice_doc = doc.get("advice")
    advice = None if advice_doc is None else decode_advice(json.dumps(advice_doc))
    return Epoch(
        index=index, trace=trace, advice=advice, binlog_range=(rng[0], rng[1])
    )


def write_epoch(directory: str, epoch: Epoch) -> str:
    """Persist one epoch as ``epoch-<index>.json``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"epoch-{epoch.index}.json")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(encode_epoch(epoch))
    os.replace(tmp, path)
    return path


def read_epochs(directory: str) -> List[Epoch]:
    """Load every ``epoch-<k>.json`` in ``directory``, ordered by index."""
    found = []
    for name in os.listdir(directory):
        match = _EPOCH_FILE.match(name)
        if match is None:
            continue
        found.append((int(match.group(1)), name))
    epochs: List[Epoch] = []
    for _, name in sorted(found):
        with open(os.path.join(directory, name), "r", encoding="utf-8") as fh:
            epochs.append(decode_epoch(fh.read()))
    return epochs
