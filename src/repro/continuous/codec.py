"""Wire format for sealed epochs.

Two physical shapes:

* the legacy ``epoch-<k>.json`` whole-document form
  (:func:`write_epoch` / :func:`read_epochs`), kept as a thin wrapper
  that embeds the trace segment and advice slice in their own versioned
  JSON encodings;
* one record stream per epoch (:mod:`repro.storage`): an epoch meta
  record, then the trace segment's event records, then the advice
  slice's section records -- the exact frames the trace and advice
  codecs emit, so there is one per-entry encoding to validate.
  :func:`iter_epochs_stored` loads epochs *one at a time*, which is what
  keeps a continuous audit's memory O(epoch) instead of O(trace).
"""

from __future__ import annotations

import json
import os
import re
from typing import Iterator, List

from repro.advice.codec import (
    ADVICE_RECORD_TYPES,
    AdviceAccumulator,
    decode_advice,
    encode_advice,
    iter_advice_frames,
)
from repro.continuous.epoch import Epoch
from repro.errors import AdviceFormatError
from repro.storage.backend import RecordReader, StorageBackend
from repro.storage.records import pack_json, unpack_json
from repro.trace.codec import (
    RT_EVENT,
    decode_trace,
    decode_trace_event,
    encode_trace,
    encode_trace_event,
)
from repro.trace.trace import Trace

EPOCH_FORMAT_VERSION = 1

STREAM_KIND = "epoch"

# Record types inside one epoch stream: the epoch meta record, the
# embedded trace-event records (repro.trace.codec.RT_EVENT), and the
# embedded advice frames (repro.advice.codec.ADVICE_RECORD_TYPES).
RT_EPOCH_META = 1

_EPOCH_FILE = re.compile(r"^epoch-(\d+)\.json$")
_EPOCH_STREAM = re.compile(r"^epoch-(\d+)$")


# -- legacy whole-document JSON ------------------------------------------------


def encode_epoch(epoch: Epoch) -> str:
    doc = {
        "version": EPOCH_FORMAT_VERSION,
        "index": epoch.index,
        "binlog_range": list(epoch.binlog_range),
        "trace": json.loads(encode_trace(epoch.trace)),
        "advice": (
            None if epoch.advice is None else json.loads(encode_advice(epoch.advice))
        ),
    }
    return json.dumps(doc, separators=(",", ":"))


def decode_epoch(payload: str) -> Epoch:
    try:
        doc = json.loads(payload)
    except (TypeError, ValueError) as exc:
        raise AdviceFormatError(f"epoch is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != EPOCH_FORMAT_VERSION:
        raise AdviceFormatError("unsupported epoch document")
    index, rng = _check_epoch_meta(doc)
    trace = decode_trace(json.dumps(doc.get("trace"))).freeze()
    advice_doc = doc.get("advice")
    advice = None if advice_doc is None else decode_advice(json.dumps(advice_doc))
    return Epoch(
        index=index, trace=trace, advice=advice, binlog_range=(rng[0], rng[1])
    )


def _check_epoch_meta(doc: dict):
    index = doc.get("index")
    if not isinstance(index, int) or index < 0:
        raise AdviceFormatError("bad epoch index")
    rng = doc.get("binlog_range")
    if (
        not isinstance(rng, list)
        or len(rng) != 2
        or not all(isinstance(x, int) for x in rng)
    ):
        raise AdviceFormatError("bad epoch binlog range")
    return index, rng


def write_epoch(directory: str, epoch: Epoch) -> str:
    """Persist one epoch as ``epoch-<index>.json``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"epoch-{epoch.index}.json")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(encode_epoch(epoch))
    os.replace(tmp, path)
    return path


def read_epochs(directory: str) -> List[Epoch]:
    """Load every ``epoch-<k>.json`` in ``directory``, ordered by index."""
    return list(iter_epochs(directory))


def iter_epochs(directory: str) -> Iterator[Epoch]:
    """Yield legacy JSON epochs one at a time, ordered by index."""
    found = []
    for name in os.listdir(directory):
        match = _EPOCH_FILE.match(name)
        if match is None:
            continue
        found.append((int(match.group(1)), name))
    for _, name in sorted(found):
        with open(os.path.join(directory, name), "r", encoding="utf-8") as fh:
            yield decode_epoch(fh.read())


# -- record streams ------------------------------------------------------------


def epoch_stream_name(index: int) -> str:
    return f"epoch-{index}"


def write_epoch_stored(backend: StorageBackend, epoch: Epoch) -> str:
    """Persist one epoch as a record stream; returns the stream name."""
    name = epoch_stream_name(epoch.index)
    with backend.create(name, STREAM_KIND) as writer:
        writer.append(
            RT_EPOCH_META,
            pack_json(
                {
                    "version": EPOCH_FORMAT_VERSION,
                    "index": epoch.index,
                    "binlog_range": list(epoch.binlog_range),
                    "has_advice": epoch.advice is not None,
                }
            ),
        )
        for event in epoch.trace:
            writer.append(RT_EVENT, pack_json(encode_trace_event(event)))
        if epoch.advice is not None:
            for rtype, payload in iter_advice_frames(epoch.advice):
                writer.append(rtype, payload)
    return name


def read_epoch_stream(reader: RecordReader) -> Epoch:
    """Decode one epoch from its record stream (strict)."""
    if reader.kind != STREAM_KIND:
        raise AdviceFormatError(
            f"expected an {STREAM_KIND!r} stream, found {reader.kind!r}"
        )
    meta = None
    trace = Trace()
    accum: AdviceAccumulator = AdviceAccumulator()
    saw_advice = False
    for rtype, payload in reader:
        if rtype == RT_EPOCH_META:
            if meta is not None:
                raise AdviceFormatError("duplicate epoch meta record")
            meta = unpack_json(payload)
            if not isinstance(meta, dict) or meta.get("version") != EPOCH_FORMAT_VERSION:
                raise AdviceFormatError("unsupported epoch stream")
            continue
        if meta is None:
            raise AdviceFormatError("epoch stream has no meta record")
        if rtype == RT_EVENT:
            trace.append(decode_trace_event(unpack_json(payload)))
        elif rtype in ADVICE_RECORD_TYPES:
            if not meta.get("has_advice"):
                raise AdviceFormatError("advice records in an advice-less epoch")
            saw_advice = True
            accum.feed(rtype, payload)
        else:
            raise AdviceFormatError(f"unknown epoch record type {rtype}")
    if meta is None:
        raise AdviceFormatError("epoch stream has no meta record")
    index, rng = _check_epoch_meta(meta)
    if meta.get("has_advice"):
        if not saw_advice:
            raise AdviceFormatError("epoch stream promises advice but has none")
        advice = accum.finish()
    else:
        advice = None
    return Epoch(
        index=index,
        trace=trace.freeze(),
        advice=advice,
        binlog_range=(rng[0], rng[1]),
    )


def iter_epochs_stored(backend: StorageBackend) -> Iterator[Epoch]:
    """Yield stored epochs one at a time, ordered by index.

    Only one epoch's records are ever resident -- the generator the
    continuous auditor consumes to stay O(epoch) in memory.
    """
    found = []
    for name in backend.list_streams("epoch-"):
        match = _EPOCH_STREAM.match(name)
        if match is not None:
            found.append((int(match.group(1)), name))
    for _, name in sorted(found):
        with backend.reader(name) as reader:
            yield read_epoch_stream(reader)


def list_epoch_streams(backend: StorageBackend) -> List[str]:
    return [
        name
        for name in backend.list_streams("epoch-")
        if _EPOCH_STREAM.match(name) is not None
    ]
