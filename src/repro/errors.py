"""Exception hierarchy shared across the Karousos reproduction.

The audit algorithms in the paper are specified with explicit ``REJECT``
statements (Appendix C).  We model REJECT as an exception,
:class:`AuditRejected`, raised from deep inside the verifier and caught at
the :func:`repro.verifier.audit.audit` boundary, which converts it into an
:class:`repro.verifier.audit.AuditResult`.
"""

from __future__ import annotations


class KarousosError(Exception):
    """Base class for all errors raised by this package."""


class AuditRejected(KarousosError):
    """The verifier rejected the trace/advice pair.

    ``reason`` is a short machine-readable tag (used by the soundness test
    suite to assert *why* an execution was rejected), ``detail`` is a
    human-readable elaboration.  ``site`` optionally pins the rejection to
    a concrete operation -- a dict with any of the keys ``rid``,
    ``handler``, ``opnum``, ``var``, ``key``, ``tx``, ``expected``,
    ``claimed``, ``prec``, ``cycle`` -- consumed by the divergence
    reporter (:mod:`repro.verifier.explain`).
    """

    def __init__(self, reason: str, detail: str = "", site: "dict | None" = None):
        self.reason = reason
        self.detail = detail
        self.site = site
        super().__init__(f"{reason}: {detail}" if detail else reason)


class AdviceFormatError(AuditRejected):
    """Advice is structurally malformed (missing maps, bad types).

    Malformed advice is indistinguishable from a misbehaving server, so this
    is a flavour of rejection rather than a programming error.
    """

    def __init__(self, detail: str = ""):
        super().__init__("malformed-advice", detail)


class TransactionRetry(KarousosError):
    """A transactional operation conflicted with a concurrent transaction.

    The store raises this instead of blocking (lock wait) so that
    applications -- like the paper's stack-dump app (section 6) -- can
    surface a retry error to the client and avoid deadlocks.
    """

    def __init__(self, key: object = None):
        self.key = key
        super().__init__(f"conflict on key {key!r}")


class TransactionAborted(KarousosError):
    """Operation attempted on a transaction that already ended."""


class ProgramError(KarousosError):
    """An application violated the execution-model contract.

    Examples: accessing a variable outside a handler, issuing operations on
    a foreign transaction, emitting after responding.  These are bugs in the
    *application*, not server misbehaviour, and are raised in every
    execution mode (unmodified server, Karousos server, verifier).
    """


class SchedulerError(KarousosError):
    """The KEM dispatch loop reached an impossible state (internal bug)."""
