"""Tolerant JSONL persistence: the storage layer's torn-tail contract
for line-oriented journals (DESIGN.md §8).

Record streams get torn-tail recovery from the framed format
(:func:`repro.storage.records.recover_stream`); the legacy JSONL
journals need the same guarantee for plain-text lines.  This module is
the one implementation both the continuous audit journal
(:mod:`repro.continuous.journal`) and any other line-oriented log share:

* :func:`load_jsonl_tolerant` parses a JSONL file, *dropping* a torn
  final line (the shape a kill mid-append leaves) and reporting the
  byte offset where the damage starts; damage anywhere before the final
  line is not a torn tail and still raises
  :class:`~repro.storage.records.RecordFormatError`;
* :class:`JsonlAppender` appends durable (flush + fsync) records,
  truncating the torn bytes on the first append so the file converges
  back to a clean stream.

Only a newline-terminated line counts as durably completed: the final
segment of a newline-free tail is suspect even when it happens to
parse, because the crash may have interrupted the write anywhere.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.storage.records import RecordFormatError


def load_jsonl_tolerant(path: str) -> Tuple[List[Dict], Optional[int]]:
    """Parse a JSONL file; returns ``(records, resume_offset)``.

    ``resume_offset`` is None for a clean file, else the byte offset of
    the torn final line (pass it to :class:`JsonlAppender` so the next
    append overwrites the torn bytes).  Mid-file damage raises
    :class:`~repro.storage.records.RecordFormatError` -- a crash only
    ever tears the tail.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    records: List[Dict] = []
    offset = 0
    lines = raw.split(b"\n")
    for i, line in enumerate(lines):
        complete = i < len(lines) - 1
        stripped = line.strip()
        if stripped:
            try:
                entry = json.loads(stripped.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                if complete:
                    raise RecordFormatError(
                        f"{path}: damaged JSONL record at offset {offset} "
                        f"(not a torn tail): {exc}"
                    ) from None
                return records, offset
            if not complete:
                return records, offset
            records.append(entry)
        offset += len(line) + 1
    return records, None


class JsonlAppender:
    """Durable JSONL appends with one-shot torn-tail truncation.

    ``resume_offset`` (from :func:`load_jsonl_tolerant`) marks torn
    bytes at the file's tail; the first :meth:`append` truncates to that
    offset before writing, so a resumed journal never carries a partial
    record.  Every append is flushed and fsynced before returning -- the
    crash-resume contract is that a record that was handed back survives
    a kill.
    """

    def __init__(self, path: str, resume_offset: Optional[int] = None):
        self.path = path
        self._resume_offset = resume_offset

    def append(self, doc: Dict) -> None:
        mode = "r+b" if self._resume_offset is not None else "ab"
        with open(self.path, mode) as fh:
            if self._resume_offset is not None:
                fh.truncate(self._resume_offset)
                fh.seek(self._resume_offset)
                self._resume_offset = None
            fh.write((json.dumps(doc, sort_keys=True) + "\n").encode("utf-8"))
            fh.flush()
            os.fsync(fh.fileno())


__all__ = ["JsonlAppender", "load_jsonl_tolerant"]
