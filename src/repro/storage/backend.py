"""Pluggable record-stream backends (DESIGN.md §8).

A :class:`StorageBackend` is a namespace of named record streams (see
:mod:`repro.storage.records` for the frame format).  Three
implementations:

* :class:`MemoryBackend` -- byte arrays in a dict; zero durability, used
  by tests and the CLI's ``--store memory`` round-trip mode;
* :class:`FileBackend` -- one append-only file per stream under a root
  directory, flushed per record and fsynced on seal; opening a stream for
  append recovers a torn tail (a crash mid-append) by truncating to the
  last whole record;
* :class:`GzipBackend` -- the file backend with gzip compression
  (``Z_SYNC_FLUSH`` per record so readers see whole records); reopening
  for append recompacts the stream, since gzip members cannot be resumed
  in place.

Writers are append-only: the storage layer has no update or delete of
individual records, which is exactly the audit trust model -- history is
only ever extended.
"""

from __future__ import annotations

import gzip
import io
import os
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs import MetricsRegistry, NULL_METRICS, ensure_metrics
from repro.storage.records import (
    RecordFormatError,
    RecordTruncatedError,
    _FRAME_CRC,
    _FRAME_HEAD,
    MAGIC,
    MAX_RECORD_LEN,
    decode_stream_header,
    encode_record,
    encode_stream_header,
    recover_stream,
)


class RecordWriter:
    """Append-only writer for one stream; context-manager friendly."""

    kind: str

    def append(self, rtype: int, payload: bytes) -> None:
        raise NotImplementedError

    def seal(self) -> None:
        """Flush everything durably (fsync where meaningful) and close."""
        raise NotImplementedError

    def close(self) -> None:
        self.seal()

    def __enter__(self) -> "RecordWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RecordReader:
    """Iterates ``(rtype, payload)`` pairs of one stream."""

    kind: str

    def __iter__(self) -> Iterator[Tuple[int, bytes]]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "RecordReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StorageBackend:
    """A namespace of named record streams.

    ``metrics`` (DESIGN.md §9) is observe-only: writers and readers report
    ``storage.<scheme>.records_written`` / ``bytes_written`` / ``fsyncs``
    / ``records_read`` / ``bytes_read`` into it, and nothing in the
    storage layer ever reads a metric back.
    """

    scheme = "abstract"
    metrics: MetricsRegistry = NULL_METRICS

    def create(self, name: str, kind: str) -> RecordWriter:
        """A fresh stream (truncates any existing one)."""
        raise NotImplementedError

    def append(self, name: str, kind: str, fsync_every: bool = False) -> RecordWriter:
        """Open (or create) a stream for appending, recovering a torn
        tail first.  ``fsync_every`` forces a durability barrier per
        record -- the audit journal's requirement."""
        raise NotImplementedError

    def reader(self, name: str) -> RecordReader:
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def list_streams(self, prefix: str = "") -> List[str]:
        raise NotImplementedError

    def delete(self, name: str) -> None:
        raise NotImplementedError

    def load_tolerant(self, name: str, kind: str) -> List[Tuple[int, bytes]]:
        """Every whole record of a stream, ignoring a torn tail.

        The crash-resume read path for journals, checkpoints, and the
        binlog: an interrupted final append must never prevent reopening
        the stream.  Mid-stream corruption still raises.  A missing
        stream reads as empty.
        """
        if not self.exists(name):
            return []
        records: List[Tuple[int, bytes]] = []
        with self.reader(name) as reader:
            if reader.kind != kind:
                raise RecordFormatError(
                    f"stream {name!r} holds {reader.kind!r} records, wanted {kind!r}"
                )
            try:
                for rtype, payload in reader:
                    records.append((rtype, payload))
            except RecordTruncatedError:
                pass
        return records


# -- shared incremental frame reader ------------------------------------------


def _read_exact(fh, n: int, context: str) -> bytes:
    data = fh.read(n)
    if len(data) < n:
        raise RecordTruncatedError(f"torn {context}: wanted {n} bytes, got {len(data)}")
    return data


def _iter_file_records(fh) -> Iterator[Tuple[int, bytes]]:
    """Stream records from a binary file object without materialising the
    stream -- the memory bound behind ``--store file`` audits."""
    while True:
        head = fh.read(_FRAME_HEAD.size)
        if not head:
            return
        if len(head) < _FRAME_HEAD.size:
            raise RecordTruncatedError(
                f"torn frame header ({len(head)} bytes at stream tail)"
            )
        rtype, length = _FRAME_HEAD.unpack(head)
        if length > MAX_RECORD_LEN:
            raise RecordFormatError(f"record claims {length} bytes (corrupt length)")
        payload = _read_exact(fh, length, "record payload")
        (stored_crc,) = _FRAME_CRC.unpack(_read_exact(fh, _FRAME_CRC.size, "record CRC"))
        crc = zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF
        if crc != stored_crc:
            # Whether this is a torn tail depends on what follows; peek.
            if fh.read(1):
                raise RecordFormatError("CRC mismatch on mid-stream record")
            raise RecordTruncatedError("CRC mismatch on final record")
        yield rtype, payload


def _read_file_header(fh, where: str) -> str:
    magic = fh.read(len(MAGIC))
    if magic != MAGIC:
        raise RecordFormatError(f"{where} is not a record stream (magic {magic!r})")
    kind_len = fh.read(1)
    if not kind_len:
        raise RecordTruncatedError(f"{where}: stream header torn")
    raw = _read_exact(fh, kind_len[0], "stream kind")
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise RecordFormatError(f"{where}: stream kind is not utf-8: {exc}") from None


# -- in-memory -----------------------------------------------------------------


class _MemoryWriter(RecordWriter):
    def __init__(self, buf: bytearray, kind: str, metrics: MetricsRegistry = NULL_METRICS):
        self._buf = buf
        self.kind = kind
        self.records_written = 0
        self._metrics = metrics

    def append(self, rtype: int, payload: bytes) -> None:
        if self._buf is None:
            raise ValueError("writer is sealed")
        encoded = encode_record(rtype, payload)
        self._buf += encoded
        self.records_written += 1
        self._metrics.counter("storage.memory.records_written").inc()
        self._metrics.counter("storage.memory.bytes_written").inc(len(encoded))

    def seal(self) -> None:
        self._buf = None


class _MemoryReader(RecordReader):
    def __init__(self, buf: bytes, metrics: MetricsRegistry = NULL_METRICS):
        self._buf = buf
        self.kind, self._start = decode_stream_header(buf)
        self._metrics = metrics

    def __iter__(self) -> Iterator[Tuple[int, bytes]]:
        from repro.storage.records import scan_records

        for rtype, payload, _ in scan_records(self._buf, self._start):
            self._metrics.counter("storage.memory.records_read").inc()
            self._metrics.counter("storage.memory.bytes_read").inc(len(payload))
            yield rtype, payload


class MemoryBackend(StorageBackend):
    """Streams held in RAM; the zero-durability reference backend."""

    scheme = "memory"

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._streams: Dict[str, bytearray] = {}
        self.metrics = ensure_metrics(metrics)

    def create(self, name: str, kind: str) -> RecordWriter:
        buf = bytearray(encode_stream_header(kind))
        self._streams[name] = buf
        return _MemoryWriter(buf, kind, metrics=self.metrics)

    def append(self, name: str, kind: str, fsync_every: bool = False) -> RecordWriter:
        buf = self._streams.get(name)
        if buf is None:
            return self.create(name, kind)
        got_kind, _, good = recover_stream(bytes(buf))
        if got_kind != kind:
            raise RecordFormatError(
                f"stream {name!r} holds {got_kind!r} records, wanted {kind!r}"
            )
        del buf[good:]
        return _MemoryWriter(buf, kind, metrics=self.metrics)

    def reader(self, name: str) -> RecordReader:
        if name not in self._streams:
            raise FileNotFoundError(name)
        return _MemoryReader(bytes(self._streams[name]), metrics=self.metrics)

    def exists(self, name: str) -> bool:
        return name in self._streams

    def list_streams(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._streams if n.startswith(prefix))

    def delete(self, name: str) -> None:
        self._streams.pop(name, None)

    def raw(self, name: str) -> bytearray:
        """The live byte buffer -- test hook for corruption injection."""
        return self._streams[name]


# -- append-only files ---------------------------------------------------------


class _FileWriter(RecordWriter):
    scheme = "file"

    def __init__(self, fh, kind: str, fsync_every: bool = False,
                 metrics: MetricsRegistry = NULL_METRICS):
        self._fh = fh
        self.kind = kind
        self._fsync_every = fsync_every
        self.records_written = 0
        self._metrics = metrics

    def append(self, rtype: int, payload: bytes) -> None:
        if self._fh is None:
            raise ValueError("writer is sealed")
        encoded = encode_record(rtype, payload)
        self._fh.write(encoded)
        # Per-record flush: a crash loses at most the record being
        # written, and torn-tail recovery drops that one cleanly.
        self._fh.flush()
        if self._fsync_every:
            os.fsync(self._fh.fileno())
            self._metrics.counter(f"storage.{self.scheme}.fsyncs").inc()
        self.records_written += 1
        self._metrics.counter(f"storage.{self.scheme}.records_written").inc()
        self._metrics.counter(f"storage.{self.scheme}.bytes_written").inc(len(encoded))

    def seal(self) -> None:
        if self._fh is None:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._metrics.counter(f"storage.{self.scheme}.fsyncs").inc()
        self._fh.close()
        self._fh = None


class _FileReader(RecordReader):
    def __init__(self, path: str, metrics: MetricsRegistry = NULL_METRICS):
        self._fh = open(path, "rb")
        self._metrics = metrics
        try:
            self.kind = _read_file_header(self._fh, os.path.basename(path))
        except Exception:
            self._fh.close()
            raise

    def __iter__(self) -> Iterator[Tuple[int, bytes]]:
        for rtype, payload in _iter_file_records(self._fh):
            self._metrics.counter("storage.file.records_read").inc()
            self._metrics.counter("storage.file.bytes_read").inc(len(payload))
            yield rtype, payload

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class FileBackend(StorageBackend):
    """One ``<name>.rec`` append-only file per stream under ``root``."""

    scheme = "file"
    suffix = ".rec"

    def __init__(self, root: str, metrics: Optional[MetricsRegistry] = None):
        self.root = root
        self.metrics = ensure_metrics(metrics)
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        return os.path.join(self.root, name + self.suffix)

    def create(self, name: str, kind: str) -> RecordWriter:
        fh = open(self._path(name), "wb")
        fh.write(encode_stream_header(kind))
        fh.flush()
        return _FileWriter(fh, kind, metrics=self.metrics)

    def append(self, name: str, kind: str, fsync_every: bool = False) -> RecordWriter:
        path = self._path(name)
        if not os.path.exists(path):
            writer = self.create(name, kind)
            writer._fsync_every = fsync_every
            return writer
        with open(path, "rb") as fh:
            buf = fh.read()
        got_kind, _, good = recover_stream(buf)
        if got_kind != kind:
            raise RecordFormatError(
                f"{path} holds {got_kind!r} records, wanted {kind!r}"
            )
        fh = open(path, "r+b")
        fh.truncate(good)
        fh.seek(good)
        return _FileWriter(fh, kind, fsync_every=fsync_every, metrics=self.metrics)

    def reader(self, name: str) -> RecordReader:
        return _FileReader(self._path(name), metrics=self.metrics)

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def list_streams(self, prefix: str = "") -> List[str]:
        names = []
        for entry in os.listdir(self.root):
            if entry.endswith(self.suffix):
                name = entry[: -len(self.suffix)]
                if name.startswith(prefix):
                    names.append(name)
        return sorted(names)

    def delete(self, name: str) -> None:
        try:
            os.unlink(self._path(name))
        except FileNotFoundError:
            pass


# -- gzip-compressed files -----------------------------------------------------


class _GzipWriter(RecordWriter):
    def __init__(self, raw, gz, kind: str, fsync_every: bool = False,
                 metrics: MetricsRegistry = NULL_METRICS):
        self._raw = raw
        self._gz = gz
        self.kind = kind
        self._fsync_every = fsync_every
        self.records_written = 0
        self._metrics = metrics

    def append(self, rtype: int, payload: bytes) -> None:
        if self._gz is None:
            raise ValueError("writer is sealed")
        encoded = encode_record(rtype, payload)
        self._gz.write(encoded)
        # SYNC_FLUSH emits a deflate block boundary: everything written so
        # far decompresses without the stream trailer.
        self._gz.flush(zlib.Z_SYNC_FLUSH)
        self._raw.flush()
        if self._fsync_every:
            os.fsync(self._raw.fileno())
            self._metrics.counter("storage.gzip.fsyncs").inc()
        self.records_written += 1
        self._metrics.counter("storage.gzip.records_written").inc()
        self._metrics.counter("storage.gzip.bytes_written").inc(len(encoded))

    def seal(self) -> None:
        if self._gz is None:
            return
        self._gz.close()
        self._raw.flush()
        os.fsync(self._raw.fileno())
        self._metrics.counter("storage.gzip.fsyncs").inc()
        self._raw.close()
        self._gz = None
        self._raw = None


class _GzipReader(RecordReader):
    def __init__(self, path: str, metrics: MetricsRegistry = NULL_METRICS):
        self._metrics = metrics
        # Decompression tolerates a missing gzip trailer (unsealed or
        # torn stream); frame CRCs are the integrity check that matters.
        with open(path, "rb") as fh:
            raw = fh.read()
        try:
            buf = _decompress_tolerant(raw)
        except (OSError, EOFError, zlib.error) as exc:
            raise RecordFormatError(f"{path}: corrupt gzip stream: {exc}") from None
        fh = io.BytesIO(buf)
        self.kind = _read_file_header(fh, os.path.basename(path))
        self._fh = fh

    def __iter__(self) -> Iterator[Tuple[int, bytes]]:
        for rtype, payload in _iter_file_records(self._fh):
            self._metrics.counter("storage.gzip.records_read").inc()
            self._metrics.counter("storage.gzip.bytes_read").inc(len(payload))
            yield rtype, payload


def _decompress_tolerant(raw: bytes) -> bytes:
    """Inflate a gzip stream, keeping whatever decompressed before any
    truncation (the frame layer then applies its own tail recovery)."""
    out = bytearray()
    decomp = zlib.decompressobj(wbits=31)
    try:
        out += decomp.decompress(raw)
        while decomp.eof and decomp.unused_data:
            # Concatenated members (append-after-seal writes a new one).
            raw = decomp.unused_data
            decomp = zlib.decompressobj(wbits=31)
            out += decomp.decompress(raw)
    except zlib.error:
        if not out:
            raise
    return bytes(out)


class GzipBackend(FileBackend):
    """The file backend, gzip-compressed (``<name>.recz``)."""

    scheme = "gzip"
    suffix = ".recz"

    def create(self, name: str, kind: str) -> RecordWriter:
        raw = open(self._path(name), "wb")
        gz = gzip.GzipFile(fileobj=raw, mode="wb", mtime=0)
        gz.write(encode_stream_header(kind))
        gz.flush(zlib.Z_SYNC_FLUSH)
        raw.flush()
        return _GzipWriter(raw, gz, kind, metrics=self.metrics)

    def append(self, name: str, kind: str, fsync_every: bool = False) -> RecordWriter:
        path = self._path(name)
        if not os.path.exists(path):
            writer = self.create(name, kind)
            writer._fsync_every = fsync_every
            return writer
        # Gzip members cannot be resumed in place: recompact the whole
        # clean prefix into a fresh stream, then keep appending.
        reader = self.reader(name)
        if reader.kind != kind:
            raise RecordFormatError(
                f"{path} holds {reader.kind!r} records, wanted {kind!r}"
            )
        records: List[Tuple[int, bytes]] = []
        try:
            for rtype, payload in reader:
                records.append((rtype, payload))
        except RecordTruncatedError:
            pass
        tmp = path + ".tmp"
        raw = open(tmp, "wb")
        gz = gzip.GzipFile(fileobj=raw, mode="wb", mtime=0)
        gz.write(encode_stream_header(kind))
        for rtype, payload in records:
            gz.write(encode_record(rtype, payload))
        gz.flush(zlib.Z_SYNC_FLUSH)
        raw.flush()
        writer = _GzipWriter(raw, gz, kind, fsync_every=fsync_every,
                             metrics=self.metrics)
        writer.records_written = len(records)
        os.replace(tmp, path)
        return writer

    def reader(self, name: str) -> RecordReader:
        return _GzipReader(self._path(name), metrics=self.metrics)


# -- selection ------------------------------------------------------------------

SCHEMES = ("memory", "file", "gzip")


def backend_for(
    scheme: str,
    path: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> StorageBackend:
    """The backend named by a CLI ``--store`` choice."""
    if scheme == "memory":
        return MemoryBackend(metrics=metrics)
    if path is None:
        raise ValueError(f"the {scheme!r} store needs a path")
    if scheme == "file":
        return FileBackend(path, metrics=metrics)
    if scheme == "gzip":
        return GzipBackend(path, metrics=metrics)
    raise ValueError(f"unknown storage scheme {scheme!r}")
