"""Unified streaming record-store layer (DESIGN.md §8).

One versioned record-stream format (:mod:`repro.storage.records`) behind
pluggable backends (:mod:`repro.storage.backend`), carrying the shared
value codec (:mod:`repro.storage.values`).  Every persistence surface --
trace, advice, epochs, checkpoints, the audit journal, and the binlog --
serialises through this package.
"""

from repro.storage.backend import (
    SCHEMES,
    FileBackend,
    GzipBackend,
    MemoryBackend,
    RecordReader,
    RecordWriter,
    StorageBackend,
    backend_for,
)
from repro.storage.jsonl import JsonlAppender, load_jsonl_tolerant
from repro.storage.records import (
    RecordFormatError,
    RecordTruncatedError,
    decode_stream_header,
    encode_record,
    encode_stream_header,
    pack_json,
    read_stream,
    recover_stream,
    scan_records,
    unpack_json,
)
from repro.storage.values import (
    decode_hid,
    decode_tid,
    decode_value,
    encode_hid,
    encode_tid,
    encode_value,
)

__all__ = [
    "SCHEMES",
    "FileBackend",
    "GzipBackend",
    "MemoryBackend",
    "RecordReader",
    "RecordWriter",
    "StorageBackend",
    "backend_for",
    "JsonlAppender",
    "load_jsonl_tolerant",
    "RecordFormatError",
    "RecordTruncatedError",
    "decode_stream_header",
    "encode_record",
    "encode_stream_header",
    "pack_json",
    "read_stream",
    "recover_stream",
    "scan_records",
    "unpack_json",
    "decode_hid",
    "decode_tid",
    "decode_value",
    "encode_hid",
    "encode_tid",
    "encode_value",
]
