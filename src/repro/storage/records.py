"""The record-stream wire format shared by every persistence surface.

A *record stream* is a stream header followed by zero or more framed
records.  It is the one on-disk/in-memory shape behind traces, advice,
epochs, checkpoints, the audit journal, and the binlog (DESIGN.md §8):

* stream header: ``magic "KRS1" | kind_len u8 | kind utf-8`` -- ``kind``
  names what the stream holds ("trace", "advice", ...), so opening the
  wrong file is a format error, not garbage decoding;
* record frame: ``rtype u8 | length u32 LE | payload | crc32 u32 LE`` --
  length-prefixed so a reader never over-reads, CRC-checked (crc32 over
  the frame header and payload) so corruption is *detected*, and typed so
  heterogeneous records (a trace event vs. an advice section) share one
  stream.

Failure taxonomy: any structural damage surfaces as
:class:`RecordFormatError`, a flavour of
:class:`~repro.errors.AdviceFormatError` -- a corrupt store is
indistinguishable from a misbehaving server, so the audit *rejects*
rather than crashes.  :class:`RecordTruncatedError` marks damage that is
consistent with a torn tail (a crash mid-append); append-mode opens use
it to recover by truncating to the last whole record, while read-mode
opens report it.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Iterator, List, Tuple

from repro.errors import AdviceFormatError

MAGIC = b"KRS1"
MAX_KIND_LEN = 255
# Record payloads are length-prefixed; cap the length so a corrupt frame
# cannot make a reader attempt a multi-gigabyte allocation.
MAX_RECORD_LEN = 1 << 30

_FRAME_HEAD = struct.Struct("<BI")  # rtype, payload length
_FRAME_CRC = struct.Struct("<I")


class RecordFormatError(AdviceFormatError):
    """A record stream is structurally damaged (bad magic, frame, or CRC)."""


class RecordTruncatedError(RecordFormatError):
    """The stream ends mid-frame or with a CRC-failed final region --
    the shape a crash mid-append (torn tail) leaves behind."""


def encode_stream_header(kind: str) -> bytes:
    raw = kind.encode("utf-8")
    if not raw or len(raw) > MAX_KIND_LEN:
        raise ValueError(f"bad stream kind {kind!r}")
    return MAGIC + bytes([len(raw)]) + raw


def decode_stream_header(buf: bytes) -> Tuple[str, int]:
    """Validate the header at the start of ``buf``; returns
    ``(kind, header_length)``."""
    if len(buf) < len(MAGIC) + 1:
        raise RecordTruncatedError("record stream shorter than its header")
    if buf[: len(MAGIC)] != MAGIC:
        raise RecordFormatError(
            f"not a record stream (magic {bytes(buf[:len(MAGIC)])!r})"
        )
    kind_len = buf[len(MAGIC)]
    end = len(MAGIC) + 1 + kind_len
    if len(buf) < end:
        raise RecordTruncatedError("record stream header torn")
    try:
        kind = bytes(buf[len(MAGIC) + 1 : end]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise RecordFormatError(f"stream kind is not utf-8: {exc}") from None
    return kind, end


def encode_record(rtype: int, payload: bytes) -> bytes:
    """One framed record: typed header, length prefix, payload, CRC."""
    if not 0 <= rtype <= 255:
        raise ValueError(f"record type {rtype} out of range")
    if len(payload) > MAX_RECORD_LEN:
        raise ValueError(f"record payload of {len(payload)} bytes exceeds cap")
    head = _FRAME_HEAD.pack(rtype, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF
    return head + payload + _FRAME_CRC.pack(crc)


def scan_records(
    buf: bytes, offset: int
) -> Iterator[Tuple[int, bytes, int]]:
    """Yield ``(rtype, payload, end_offset)`` for each whole record from
    ``offset``.

    Raises :class:`RecordTruncatedError` when the buffer ends mid-frame
    and :class:`RecordFormatError` on CRC mismatch or an impossible
    length.  Because frames are length-prefixed, nothing after the first
    damaged frame can be resynchronised -- callers either reject the
    stream (read path) or truncate at the last good ``end_offset``
    (append-path torn-tail recovery).
    """
    pos = offset
    total = len(buf)
    while pos < total:
        if total - pos < _FRAME_HEAD.size:
            raise RecordTruncatedError(
                f"torn frame header at offset {pos} ({total - pos} bytes)"
            )
        rtype, length = _FRAME_HEAD.unpack_from(buf, pos)
        if length > MAX_RECORD_LEN:
            raise RecordFormatError(
                f"record at offset {pos} claims {length} bytes (corrupt length)"
            )
        end = pos + _FRAME_HEAD.size + length + _FRAME_CRC.size
        if end > total:
            raise RecordTruncatedError(
                f"torn record at offset {pos}: frame wants {end - total} more bytes"
            )
        payload = bytes(buf[pos + _FRAME_HEAD.size : end - _FRAME_CRC.size])
        (stored_crc,) = _FRAME_CRC.unpack_from(buf, end - _FRAME_CRC.size)
        crc = zlib.crc32(payload, zlib.crc32(buf[pos : pos + _FRAME_HEAD.size]))
        if (crc & 0xFFFFFFFF) != stored_crc:
            raise _crc_error(pos, end, total)
        yield rtype, payload, end
        pos = end


def _crc_error(pos: int, end: int, total: int) -> RecordFormatError:
    # A CRC failure on the *final* record is what an interrupted
    # write-then-crash looks like (payload partially on disk, stale bytes
    # behind it); classify it as truncation so append-opens can recover.
    if end == total:
        return RecordTruncatedError(f"CRC mismatch on final record at offset {pos}")
    return RecordFormatError(f"CRC mismatch on record at offset {pos}")


def read_stream(buf: bytes) -> Tuple[str, List[Tuple[int, bytes]]]:
    """Decode a whole in-memory stream strictly (no tail tolerance)."""
    kind, pos = decode_stream_header(buf)
    records = [(rtype, payload) for rtype, payload, _ in scan_records(buf, pos)]
    return kind, records


def recover_stream(buf: bytes) -> Tuple[str, List[Tuple[int, bytes]], int]:
    """Decode as much of a possibly-torn stream as is whole.

    Returns ``(kind, records, good_length)`` where ``good_length`` is the
    byte offset of the first damage (== ``len(buf)`` when the stream is
    clean).  Mid-stream corruption (a CRC failure *before* the final
    record) is not recoverable damage and still raises -- a crash only
    ever tears the tail.
    """
    kind, pos = decode_stream_header(buf)
    records: List[Tuple[int, bytes]] = []
    good = pos
    try:
        for rtype, payload, end in scan_records(buf, pos):
            records.append((rtype, payload))
            good = end
    except RecordTruncatedError:
        pass
    return kind, records, good


# -- payload helpers ----------------------------------------------------------

# Record payloads are canonical JSON (sorted keys would change documents
# the legacy codecs emit, so only the separators are pinned).


def pack_json(doc: object) -> bytes:
    return json.dumps(doc, separators=(",", ":")).encode("utf-8")


def unpack_json(payload: bytes) -> object:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise RecordFormatError(f"record payload is not JSON: {exc}") from None

