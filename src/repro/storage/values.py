"""Tagged value encoding shared by every persistence surface.

Round-trips the Python types applications may store -- None, bool, int,
float, str, and (possibly nested) lists/tuples/dicts -- plus the audit
identifiers (:class:`~repro.core.ids.HandlerId`,
:class:`~repro.core.ids.TxId`) that appear inside stored values such as
binlog writer tokens.

This lives in the storage layer because *every* codec needs it: trace
payloads, advice entries, checkpoints, and the binlog all carry values.
(It began life in :mod:`repro.advice.codec`, which forced the trace codec
to import from the advice package; the compatibility re-exports there
remain, but the layering now matches the dependency arrow.)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.ids import HandlerId, TxId
from repro.errors import AdviceFormatError


# -- handler / transaction ids ------------------------------------------------


def encode_hid(hid: HandlerId) -> List[List]:
    """Canonical path encoding: [[function_id, opnum], ...] root-first."""
    return [[fid, opnum] for fid, opnum in hid.canonical()]


def decode_hid(data: object) -> HandlerId:
    if not isinstance(data, list) or not data:
        raise AdviceFormatError(f"bad handler id encoding: {data!r}")
    hid: Optional[HandlerId] = None
    for part in data:
        if (
            not isinstance(part, list)
            or len(part) != 2
            or not isinstance(part[0], str)
            or not isinstance(part[1], int)
        ):
            raise AdviceFormatError(f"bad handler id segment: {part!r}")
        hid = HandlerId(part[0], hid, part[1])
    return hid


def encode_tid(tid: TxId) -> Dict:
    return {"hid": encode_hid(tid.hid), "opnum": tid.opnum}


def decode_tid(data: object) -> TxId:
    if not isinstance(data, dict) or set(data) != {"hid", "opnum"}:
        raise AdviceFormatError(f"bad transaction id encoding: {data!r}")
    if not isinstance(data["opnum"], int):
        raise AdviceFormatError("transaction opnum must be an int")
    return TxId(decode_hid(data["hid"]), data["opnum"])


# -- values --------------------------------------------------------------------


def encode_value(value: object) -> object:
    """Tagged encoding preserving tuple-ness and non-string dict keys."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return {"t": "p", "v": value}
    if isinstance(value, tuple):
        return {"t": "t", "v": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"t": "l", "v": [encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {
            "t": "d",
            "v": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    if isinstance(value, TxId):
        return {"t": "x", "v": encode_tid(value)}
    raise AdviceFormatError(f"unencodable value of type {type(value).__name__}")


def decode_value(data: object) -> object:
    if not isinstance(data, dict) or "t" not in data or "v" not in data:
        raise AdviceFormatError(f"bad value encoding: {data!r}")
    tag, v = data["t"], data["v"]
    if tag == "p":
        if v is not None and not isinstance(v, (bool, int, float, str)):
            raise AdviceFormatError(f"bad primitive: {v!r}")
        return v
    if tag == "t":
        return tuple(decode_value(x) for x in _expect_list(v))
    if tag == "l":
        return [decode_value(x) for x in _expect_list(v)]
    if tag == "d":
        out = {}
        for pair in _expect_list(v):
            if not isinstance(pair, list) or len(pair) != 2:
                raise AdviceFormatError(f"bad dict entry: {pair!r}")
            out[decode_value(pair[0])] = decode_value(pair[1])
        return out
    if tag == "x":
        return decode_tid(v)
    raise AdviceFormatError(f"unknown value tag {tag!r}")


def _expect_list(value: object) -> list:
    if not isinstance(value, list):
        raise AdviceFormatError("expected a list")
    return value
