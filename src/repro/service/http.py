"""The daemon's status endpoint (DESIGN.md §15).

A tiny stdlib HTTP server on its own thread:

* ``GET /healthz``      -- ``200 ok`` while the daemon is running;
* ``GET /metrics.json`` -- the fleet metrics snapshot, a standard
  ``repro.metrics/1`` document (the same schema ``--metrics-out``
  writes and :func:`repro.obs.validate_metrics_doc` checks), with every
  tenant's metrics under ``tenant.<name>.`` keys.

The handler only ever *reads* a snapshot function supplied by the
service -- it never touches live registries, so scraping cannot perturb
an audit (observability neutrality, DESIGN.md §9).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional


class StatusServer:
    """Serves ``/healthz`` and ``/metrics.json`` until :meth:`stop`."""

    def __init__(
        self,
        snapshot_fn: Callable[[], Dict[str, object]],
        port: int = 0,
        host: str = "127.0.0.1",
    ):
        self.snapshot_fn = snapshot_fn
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path == "/healthz":
                    self._send(200, b"ok\n", "text/plain")
                elif self.path == "/metrics.json":
                    try:
                        doc = server.snapshot_fn()
                        body = json.dumps(doc, sort_keys=True).encode("utf-8")
                    except Exception as exc:  # surface, don't crash the thread
                        self._send(
                            500,
                            f"snapshot failed: {exc}\n".encode("utf-8"),
                            "text/plain",
                        )
                        return
                    self._send(200, body, "application/json")
                else:
                    self._send(404, b"not found\n", "text/plain")

            def _send(self, code: int, body: bytes, ctype: str) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                pass  # stay quiet; the daemon owns stdout

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-status",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


__all__ = ["StatusServer"]
