"""The fleet audit service (DESIGN.md §15).

:class:`AuditService` is the long-running ``repro serve-audit`` core:
N tenant streams multiplexed over one shared DAG pool, one scheduling
thread.  The main loop interleaves four phases:

1. **ingest** -- each tenant's :class:`~repro.service.tenant.EpochSource`
   is polled for newly sealed epochs, bounded by the tenant's queue
   room; a full queue records backpressure and leaves the source's
   watermark in place (nothing is dropped, nothing blocks);
2. **admit** -- an idle tenant's oldest queued epoch is compiled to a
   DAG and admitted to the shared pool (short-circuit verdicts --
   cascade rejections, forged chains -- are recorded without touching
   the pool);
3. **pump** -- the pool executes a bounded batch of ready nodes under
   the weighted-fair / quota policy;
4. **harvest** -- finished plans commit their verdicts through the
   tenant stream (journal, checkpoint chain, metrics), exactly like a
   solo continuous audit.

Lifecycle: :meth:`request_stop` (the SIGTERM handler) drains -- in-
flight worker results are absorbed and journaled, the interrupted
epoch's node journal is sealed (``abandon``), every tenant's stores are
closed -- so a restarted service resumes each tenant at node
granularity: verified epochs skip via the audit journal, the
interrupted epoch replays its journaled nodes, queued epochs re-read
from the source.

One process-wide :class:`~repro.verifier.dedup.cache.VerdictCache` may
be shared across tenants (``dedup=True``): each tenant keeps its *own*
:class:`~repro.verifier.dedup.executor.Deduplicator` (per-stage stats
stay per-tenant, so hit/miss attribution lands in that tenant's
metrics) over the one cache, and the service closes the cache exactly
once at shutdown.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional

from repro.obs import MetricsRegistry
from repro.service.http import StatusServer
from repro.service.pool import PlanJob, SharedDagPool
from repro.service.quota import TokenBucket
from repro.service.tenant import EpochSource, TenantConfig, TenantStream
from repro.storage.backend import backend_for


class _TenantRuntime:
    """One tenant's live wiring inside the service."""

    def __init__(self, config: TenantConfig, stream: TenantStream,
                 source: EpochSource):
        self.config = config
        self.name = config.name
        self.stream = stream
        self.source = source
        self.active: Optional[PlanJob] = None
        self.backpressured = False  # currently in the full-queue state?


class AuditService:
    """N tenant streams over one shared DAG scheduler."""

    def __init__(
        self,
        tenants: List[TenantConfig],
        state_dir: str,
        scheduler: str = "serial",
        jobs: int = 1,
        quotas_enabled: bool = True,
        dedup: bool = False,
        cache_dir: Optional[str] = None,
        status_port: Optional[int] = None,
        metrics_out: Optional[str] = None,
        metrics_every: float = 2.0,
        poll_interval: float = 0.05,
        pump_batch: int = 128,
        torn_limit: int = 16,
        app_factory=None,
    ):
        if not tenants:
            raise ValueError("a service needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {sorted(names)}")
        if app_factory is None:
            from repro.harness.experiment import make_app as app_factory
        self.state_dir = state_dir
        self.status_port = status_port
        self.metrics_out = metrics_out
        self.metrics_every = metrics_every
        self.poll_interval = poll_interval
        self.pump_batch = pump_batch
        self._publish_every = 0.25  # status-snapshot refresh cadence
        self.torn_limit = torn_limit
        self.metrics = MetricsRegistry()  # service-level (fleet) registry
        self._stop = threading.Event()
        self._snap_lock = threading.Lock()
        self._published: Optional[Dict[str, object]] = None
        self._running = False
        self.status: Optional[StatusServer] = None
        self.epoch_ticks: List[Dict[str, object]] = []

        self.cache = None
        if dedup:
            from repro.verifier.dedup import VerdictCache

            cache_backend = (
                backend_for("file", cache_dir) if cache_dir else None
            )
            self.cache = VerdictCache(backend=cache_backend,
                                      metrics=self.metrics)

        quotas: Dict[str, TokenBucket] = {}
        self._tenants: List[_TenantRuntime] = []
        for config in tenants:
            tenant_state = config.state or os.path.join(state_dir, config.name)
            tenant_dedup = None
            if self.cache is not None:
                from repro.verifier.dedup import Deduplicator

                tenant_dedup = Deduplicator(self.cache)
            stream = TenantStream(
                config,
                app_factory(config.app),
                state_dir=tenant_state,
                metrics=MetricsRegistry(),  # private; merged under a prefix
                dedup=tenant_dedup,
            )
            source = EpochSource(
                backend_for(config.scheme, config.store),
                start_index=stream._next_index,
                torn_limit=torn_limit,
            )
            self._tenants.append(_TenantRuntime(config, stream, source))
            if quotas_enabled:
                quotas[config.name] = TokenBucket(config.quota)
        self._by_name = {rt.name: rt for rt in self._tenants}
        self.pool = SharedDagPool(
            scheduler=scheduler,
            jobs=jobs,
            quotas=quotas,
            fair=quotas_enabled,
        )

    # -- lifecycle ---------------------------------------------------------

    def request_stop(self) -> None:
        """Signal-safe: ask the main loop to drain and exit."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def run(self, once: bool = False) -> int:
        """The scheduling loop.  ``once=True`` exits when every source
        is exhausted and every queue and plan has drained (the batch /
        CI mode); otherwise runs until :meth:`request_stop`.  Returns
        the number of epochs audited this run."""
        audited0 = sum(len(rt.stream.verdicts) for rt in self._tenants)
        self._running = True
        self._publish_snapshot()  # never serve a None/racy first scrape
        if self.status_port is not None and self.status is None:
            self.status = StatusServer(self.fleet_snapshot,
                                       port=self.status_port)
            self.status.start()
        last_metrics = last_publish = time.monotonic()
        try:
            while not self._stop.is_set():
                progressed = self._ingest() > 0
                progressed |= self._admit() > 0
                progressed |= self.pool.pump(
                    max_nodes=self.pump_batch, stop=self._stop.is_set
                ) > 0
                progressed |= self._harvest() > 0
                now = time.monotonic()
                if (
                    self.metrics_out
                    and now - last_metrics >= self.metrics_every
                ):
                    self._write_metrics()
                    last_metrics = last_publish = now
                elif now - last_publish >= self._publish_every:
                    self._publish_snapshot()
                    last_publish = now
                if once and not progressed and self._drained():
                    break
                if not progressed and not self._stop.is_set():
                    time.sleep(self.poll_interval)
        finally:
            try:
                self._shutdown()
            finally:
                self._running = False
        return sum(len(rt.stream.verdicts) for rt in self._tenants) - audited0

    def _drained(self) -> bool:
        # A source with a pending-but-corrupt epoch is done *waiting*
        # (nothing will ever decode it); it is reported as an input
        # failure by summary(), not silently skipped.
        return (
            self.pool.idle
            and all(
                not rt.stream._queue and rt.active is None
                for rt in self._tenants
            )
            and all(
                not rt.source.has_pending() or rt.source.corrupt
                for rt in self._tenants
            )
        )

    def _shutdown(self) -> None:
        # Drain: absorb (and journal) every in-flight worker result
        # without launching anything new, commit plans that finished,
        # seal the node journal of the plan that didn't.
        self.pool.pump(launch=False)
        self._harvest()
        for rt in self._tenants:
            if rt.active is not None:
                rt.active.runner.abandon()
                rt.active = None
        if self.metrics_out:
            self._write_metrics()
        if self.status is not None:
            self.status.stop()
            self.status = None
        for rt in self._tenants:
            rt.stream.close()
        if self.cache is not None:
            self.cache.close()
        self.pool.shutdown()

    # -- loop phases -------------------------------------------------------

    def _ingest(self) -> int:
        count = 0
        for rt in self._tenants:
            room = rt.stream.queue_room
            if room <= 0:
                if rt.source.has_pending() and not rt.backpressured:
                    # Sealed epochs are waiting but the queue is full:
                    # one backpressure event per *entry* into that state
                    # (not per poll -- the watermark stays put either
                    # way), matching the solo driver's semantics.
                    rt.stream.backpressure_events += 1
                    rt.backpressured = True
                continue
            rt.backpressured = False
            for epoch in rt.source.poll(room):
                rt.stream.offer(epoch)
                count += 1
        return count

    def _admit(self) -> int:
        count = 0
        for rt in self._tenants:
            if rt.active is not None:
                continue
            before = len(rt.stream.verdicts)
            started = rt.stream.start_job()
            count += len(rt.stream.verdicts) - before  # short-circuits
            if started is None:
                continue
            epoch, dag, nodes, edges = started
            rt.active = self.pool.admit(rt.name, dag, nodes, edges, tag=epoch)
            count += 1
        return count

    def _harvest(self) -> int:
        count = 0
        for job in self.pool.take_done():
            rt = self._by_name[job.tenant]
            epoch = job.tag
            rt.stream.finish_job(epoch, job.runner)
            rt.active = None
            self.epoch_ticks.append(
                {
                    "tenant": job.tenant,
                    "epoch": epoch.index,
                    "admitted_tick": job.admitted_tick,
                    "completed_tick": job.completed_tick,
                }
            )
            count += 1
        return count

    # -- observability -----------------------------------------------------

    def fleet_snapshot(self) -> Dict[str, object]:
        """The fleet ``repro.metrics/1`` document.  While the
        scheduling loop is live this returns the loop's last *published*
        snapshot (the HTTP thread must never iterate mutable verdict /
        registry state the loop is writing); once the loop has exited it
        builds a fresh one."""
        with self._snap_lock:
            published = self._published
        if self._running and published is not None:
            return published
        return self._build_fleet_snapshot()

    def _publish_snapshot(self) -> Dict[str, object]:
        """Main-loop only: build a snapshot and hand the immutable
        result to the status thread."""
        doc = self._build_fleet_snapshot()
        with self._snap_lock:
            self._published = doc
        return doc

    def _build_fleet_snapshot(self) -> Dict[str, object]:
        """One ``repro.metrics/1`` document for the whole fleet:
        service-level metrics at the top level, each tenant's registry
        under ``tenant.<name>.``, plus live per-tenant gauges.  Touches
        live state -- call from the scheduling thread (or at rest)."""
        fleet = MetricsRegistry()
        fleet.merge(self.metrics.snapshot())
        fleet.gauge("service.tenants").set(len(self._tenants))
        fleet.gauge("service.ticks").set(self.pool.ticks)
        fleet.gauge("service.quota_rounds").set(self.pool.quota_rounds)
        for rt in self._tenants:
            prefix = f"tenant.{rt.name}."
            fleet.merge(rt.stream.metrics.snapshot(), prefix=prefix)
            gauge = lambda name, value: fleet.gauge(prefix + name).set(value)  # noqa: E731
            stream = rt.stream
            gauge("service.backlog", len(stream._queue))
            gauge("service.epochs_verified", sum(
                1 for v in stream.verdicts.values() if v.accepted
            ))
            gauge("service.epochs_rejected", sum(
                1 for v in stream.verdicts.values() if not v.accepted
            ))
            gauge("service.backpressure_events", stream.backpressure_events)
            gauge("service.ingested", rt.source.ingested)
            gauge("service.torn_reads", rt.source.torn_reads)
            gauge("service.input_corrupt", int(rt.source.corrupt))
            gauge("service.resumed_epochs", stream.skipped_resumed)
            gauge("service.quota_throttled",
                  self.pool.throttled.get(rt.name, 0))
        return fleet.snapshot()

    def _write_metrics(self) -> None:
        doc = self._publish_snapshot()
        tmp = self.metrics_out + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        os.replace(tmp, self.metrics_out)

    def summary(self) -> Dict[str, object]:
        """Per-tenant verdict summary (the ``--once`` report)."""
        tenants = {}
        for rt in self._tenants:
            stream = rt.stream
            verdicts = [stream.verdicts[i] for i in sorted(stream.verdicts)]
            rejection = stream.first_rejection
            # A corrupt epoch stream is an audit failure, not a clean
            # drain: the solo CLI rejects the same input with
            # reason=input-format, and batch mode must not report
            # ACCEPT for a tenant whose tail was never audited.
            corrupt = rt.source.corrupt
            if rejection is not None:
                reason = rejection.result.reason
            elif corrupt:
                reason = "input-format"
            else:
                reason = "accepted"
            tenants[rt.name] = {
                "app": rt.config.app,
                "accepted": rejection is None
                and not corrupt
                and all(v.accepted for v in verdicts),
                "reason": reason,
                "input": {
                    "pending": rt.source.has_pending(),
                    "ingested": rt.source.ingested,
                    "torn_reads": rt.source.torn_reads,
                    "corrupt": corrupt,
                    "error": rt.source.last_error,
                },
                "resumed_epochs": stream.skipped_resumed,
                "stats": stream.stats(),
                "epochs": [
                    {
                        "epoch": v.epoch,
                        "accepted": v.accepted,
                        "reason": v.result.reason,
                        "detail": v.result.detail,
                        "checkpoint_digest": v.checkpoint_digest,
                    }
                    for v in verdicts
                ],
            }
        return {
            "tenants": tenants,
            "ticks": self.pool.ticks,
            "quota_rounds": self.pool.quota_rounds,
        }


__all__ = ["AuditService"]
