"""Per-tenant execution quotas (DESIGN.md §15).

The super-producer threat (Jiang et al., PAPERS.md): one hot tenant
stream with huge epochs can monopolise a shared auditing pipeline and
starve every other tenant.  The fleet pool therefore charges each
*scheduled re-execution node* against its tenant's token bucket --
re-execution is where audit time actually goes; the cheap deterministic
stages (decode, preprocess, isolation, merge, checkpoint) stay free so
quotas never distort verdicts, only pacing.

A bucket holds ``quota`` tokens per round.  The pool refills *every*
bucket at once, only when no ready tenant can spend (the round
boundary), so relative service rates converge to the quota ratios:
tenant A with quota 4 and tenant B with quota 1 see a 4:1 split of
re-execution slots while both have work, and an idle tenant's unused
tokens do not bank across rounds (no burst debt).
"""

from __future__ import annotations

from typing import Optional


class TokenBucket:
    """Round-based execution allowance; ``quota`` None or <= 0 means
    unlimited (the bucket always grants)."""

    __slots__ = ("quota", "tokens", "spent", "refills")

    def __init__(self, quota: Optional[int] = None):
        self.quota = int(quota) if quota and int(quota) > 0 else 0
        self.tokens = self.quota
        self.spent = 0
        self.refills = 0

    @property
    def unlimited(self) -> bool:
        return self.quota == 0

    def try_take(self) -> bool:
        """Spend one token; False when the bucket is dry this round."""
        if self.unlimited:
            self.spent += 1
            return True
        if self.tokens <= 0:
            return False
        self.tokens -= 1
        self.spent += 1
        return True

    def refill(self) -> None:
        """Start a new round (no carry-over of unused tokens)."""
        if not self.unlimited:
            self.tokens = self.quota
            self.refills += 1

    def __repr__(self) -> str:
        if self.unlimited:
            return "<TokenBucket unlimited>"
        return f"<TokenBucket {self.tokens}/{self.quota}>"


__all__ = ["TokenBucket"]
