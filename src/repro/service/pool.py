"""The shared multi-plan DAG pool (DESIGN.md §15).

One :class:`SharedDagPool` executes the node DAGs of *many* tenants'
epoch audits at once.  Each admitted :class:`PlanJob` wraps a prepared
:class:`~repro.verifier.dag.driver.DagAuditor` (via its
``prepare()`` / runner-protocol / ``finalize()`` surface) plus that
plan's private Kahn bookkeeping; the pool interleaves ready nodes
across jobs behind a weighted-fair pick:

* **fair mode** (quotas on): round-robin over tenants with ready work;
  a re-execution node costs one token from the tenant's
  :class:`~repro.service.quota.TokenBucket`, everything else is free.
  When every ready tenant is token-blocked the pool refills all buckets
  (one *round*), so service rates converge to the quota ratios and a
  super-producer cannot starve a small tenant.
* **FIFO mode** (quotas off): strict job-admission order -- the
  head-of-line behaviour that *exhibits* the super-producer threat (a
  huge epoch admitted first delays everyone behind it by its full node
  count; the starvation benchmark measures exactly this).

Correctness does not depend on the pick at all: within one plan, node
results are only *absorbed* here (always in the admitting thread) and
merged by the driver in canonical group order later, so any cross- or
intra-tenant interleaving yields byte-identical per-tenant verdicts --
the same argument that makes the single-plan schedulers equivalent
(DESIGN.md §13).  Fairness buys latency, not different answers.

Parallel backends reuse the single-plan schedulers' pool hooks
(``_submit`` / ``_resolve`` / worker-failure fallback): one shared
thread or process pool serves every tenant's parallel-safe nodes.

Time is counted in deterministic *ticks* (one absorbed node = one
tick): latency bounds in tests and benchmarks are stated in ticks, so
they hold under any wall-clock conditions.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.verifier.dag.driver import PlanAborted
from repro.verifier.dag.plan import NODE_REEXEC, PlanNode
from repro.verifier.dag.scheduler import (
    SCHEDULER_SERIAL,
    _RunLocal,
    make_scheduler,
)
from repro.service.quota import TokenBucket


class PlanJob:
    """One tenant-epoch plan being executed in the pool."""

    def __init__(
        self,
        tenant: str,
        runner: object,
        nodes: Sequence[PlanNode],
        edges: Sequence[Tuple[str, str]],
        seq: int = 0,
        tag: object = None,
    ):
        self.tenant = tenant
        self.runner = runner  # the DagAuditor (runner protocol + finalize)
        self.seq = seq  # admission order (FIFO mode's sort key)
        self.tag = tag  # opaque caller context (the epoch, typically)
        self._by_id = {n.node_id: n for n in nodes}
        self._canonical = {n.node_id: i for i, n in enumerate(nodes)}
        self._indegree: Dict[str, int] = {nid: 0 for nid in self._by_id}
        self._successors: Dict[str, List[str]] = {nid: [] for nid in self._by_id}
        for src, dst in edges:
            self._indegree[dst] += 1
            self._successors[src].append(dst)
        self.ready: List[PlanNode] = sorted(
            (n for n in nodes if self._indegree[n.node_id] == 0),
            key=self._key,
        )
        self.remaining = len(self._by_id)
        self.outstanding = 0  # futures in flight for this job
        self.aborted = False
        self.admitted_tick: Optional[int] = None
        self.completed_tick: Optional[int] = None

    def _key(self, node: PlanNode) -> int:
        return self._canonical[node.node_id]

    @property
    def done(self) -> bool:
        if self.outstanding:
            return False
        return self.aborted or self.remaining == 0

    def peek(self) -> Optional[PlanNode]:
        return self.ready[0] if self.ready else None

    def pop(self) -> PlanNode:
        return self.ready.pop(0)

    def complete(self, node: PlanNode) -> None:
        """Mark one node absorbed; promote newly unblocked successors
        in canonical order (the per-tenant solo order)."""
        self.remaining -= 1
        for succ in self._successors[node.node_id]:
            self._indegree[succ] -= 1
            if self._indegree[succ] == 0:
                self.ready.append(self._by_id[succ])
        self.ready.sort(key=self._key)

    def abort(self) -> None:
        self.aborted = True
        self.ready.clear()


class SharedDagPool:
    """Weighted-fair execution of many plans over one worker pool."""

    def __init__(
        self,
        scheduler: str = SCHEDULER_SERIAL,
        jobs: int = 1,
        quotas: Optional[Dict[str, TokenBucket]] = None,
        fair: bool = True,
        on_tick: Optional[Callable[[int], None]] = None,
    ):
        self._impl = make_scheduler(scheduler, jobs=jobs)
        self.scheduler_name = self._impl.name
        self.width = self._impl.jobs
        self.parallel = self._impl.parallel and self._impl.jobs > 1
        self.fair = fair
        self.quotas: Dict[str, TokenBucket] = quotas if quotas is not None else {}
        self.on_tick = on_tick
        self.ticks = 0
        self.quota_rounds = 0
        self.throttled: Dict[str, int] = {}
        self._jobs: List[PlanJob] = []
        self._seq = 0
        self._rr = 0  # round-robin cursor over tenant names
        self._pool = None
        self._futures: Dict[object, Tuple[PlanJob, PlanNode]] = {}

    # -- admission ---------------------------------------------------------

    def admit(
        self,
        tenant: str,
        runner: object,
        nodes: Sequence[PlanNode],
        edges: Sequence[Tuple[str, str]],
        tag: object = None,
    ) -> PlanJob:
        job = PlanJob(tenant, runner, nodes, edges, seq=self._seq, tag=tag)
        self._seq += 1
        job.admitted_tick = self.ticks
        self._jobs.append(job)
        return job

    @property
    def active(self) -> List[PlanJob]:
        return list(self._jobs)

    def take_done(self) -> List[PlanJob]:
        """Remove and return every finished job (admission order)."""
        done = [j for j in self._jobs if j.done]
        self._jobs = [j for j in self._jobs if not j.done]
        for job in done:
            if job.completed_tick is None:
                job.completed_tick = self.ticks
        return done

    @property
    def idle(self) -> bool:
        return not self._jobs and not self._futures

    # -- the pump ----------------------------------------------------------

    def pump(
        self,
        max_nodes: Optional[int] = None,
        launch: bool = True,
        stop: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Execute ready nodes until nothing is runnable (or
        ``max_nodes`` absorbed).  ``stop`` is polled before each
        launch so a SIGTERM interrupts *between nodes*, not between
        pump batches -- that is what makes the drain node-granular.
        ``launch=False`` is the drain mode: no new work starts,
        outstanding futures are still absorbed (and journaled) so a
        restart resumes past them."""
        executed = 0
        while max_nodes is None or executed < max_nodes:
            if launch and stop is not None and stop():
                break
            if not launch:
                if not self._futures:
                    break
                executed += self._absorb_completed(block=True)
                continue
            if self.parallel:
                self._fan_out()
            pick = self._pick()
            if pick is not None:
                job, node = pick
                self._run_inline(job, node)
                executed += 1
                executed += self._absorb_completed(block=False)
                continue
            if self._futures:
                executed += self._absorb_completed(block=True)
                continue
            break
        return executed

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- fair pick ---------------------------------------------------------

    def _runnable_jobs(self) -> List[PlanJob]:
        return [j for j in self._jobs if j.ready and not j.aborted]

    def _charge(self, tenant: str, node: PlanNode) -> bool:
        """True if the node may run now (token taken when it costs one)."""
        if node.stage != NODE_REEXEC:
            return True
        bucket = self.quotas.get(tenant)
        if bucket is None:
            return True
        if bucket.try_take():
            return True
        self.throttled[tenant] = self.throttled.get(tenant, 0) + 1
        return False

    def _pick(self) -> Optional[Tuple[PlanJob, PlanNode]]:
        candidates = self._runnable_jobs()
        if not candidates:
            return None
        if not self.fair:
            # FIFO: strict admission order, full head-of-line blocking.
            job = min(candidates, key=lambda j: j.seq)
            return job, job.pop()
        # Round-robin over tenants; within a tenant, the earliest job's
        # minimal canonical node (= the solo serial order).
        tenants = sorted({j.tenant for j in candidates})
        for attempt in (0, 1):
            for offset in range(len(tenants)):
                tenant = tenants[(self._rr + offset) % len(tenants)]
                job = min(
                    (j for j in candidates if j.tenant == tenant),
                    key=lambda j: j.seq,
                )
                node = job.peek()
                if self._charge(tenant, node):
                    self._rr = (self._rr + offset + 1) % len(tenants)
                    return job, job.pop()
            if attempt == 0:
                # Every ready tenant is token-blocked: round boundary.
                for bucket in self.quotas.values():
                    bucket.refill()
                self.quota_rounds += 1
        return None

    # -- execution ---------------------------------------------------------

    def _run_inline(self, job: PlanJob, node: PlanNode) -> None:
        outcome = job.runner.execute(node)
        self._absorb(job, node, outcome)

    def _fan_out(self) -> None:
        """Ship every ready parallel-safe node whose tenant has budget
        to the shared worker pool (admission order, same token charge
        as the fair pick; FIFO mode never charges -- same as
        :meth:`_pick`'s FIFO branch)."""
        for job in sorted(self._runnable_jobs(), key=lambda j: j.seq):
            for node in [n for n in job.ready if job.runner.parallel_safe(n)]:
                if job.aborted:
                    break  # an inline fallback rejected this plan
                if self.fair and node.stage == NODE_REEXEC:
                    bucket = self.quotas.get(job.tenant)
                    if bucket is not None and not bucket.try_take():
                        self.throttled[job.tenant] = (
                            self.throttled.get(job.tenant, 0) + 1
                        )
                        break  # tenant out of budget this round
                job.ready.remove(node)
                self._ship(job, node)

    def _ship(self, job: PlanJob, node: PlanNode) -> None:
        if self._pool is None:
            self._pool = self._impl._make_pool(job.runner, self.width)
        try:
            fut = self._impl._submit(self._pool, job.runner, node)
        except _RunLocal:
            # Not shippable (cache replay, unpicklable inputs): inline.
            self._run_inline(job, node)
            return
        except Exception:
            outcome = job.runner.on_worker_failure(node)
            self._absorb(job, node, outcome)
            return
        self._futures[fut] = (job, node)
        job.outstanding += 1

    def _absorb_completed(self, block: bool) -> int:
        if not self._futures:
            return 0
        done, _ = wait(
            set(self._futures),
            timeout=None if block else 0,
            return_when=FIRST_COMPLETED,
        )
        absorbed = 0
        for fut in sorted(
            done, key=lambda f: (self._futures[f][0].seq,
                                 self._futures[f][0]._key(self._futures[f][1])),
        ):
            job, node = self._futures.pop(fut)
            job.outstanding -= 1
            if job.aborted:
                continue  # plan already rejected; result is irrelevant
            try:
                outcome = self._impl._resolve(job.runner, node, fut.result())
            except Exception:
                outcome = job.runner.on_worker_failure(node)
            self._absorb(job, node, outcome)
            absorbed += 1
        return absorbed

    def _absorb(self, job: PlanJob, node: PlanNode, outcome: object) -> None:
        self.ticks += 1
        if self.on_tick is not None:
            self.on_tick(self.ticks)
        try:
            job.runner.absorb(node, outcome)
        except PlanAborted:
            job.abort()
        else:
            job.complete(node)
        if job.done and job.completed_tick is None:
            job.completed_tick = self.ticks


__all__ = ["PlanJob", "SharedDagPool"]
