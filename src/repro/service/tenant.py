"""Tenants: configuration, epoch ingestion, and the per-tenant audit
stream (DESIGN.md §15).

A *tenant* is one app plus one epoch source -- a storage directory some
sealer writes ``epoch-<k>`` record streams into.  The service gives
each tenant:

* an :class:`EpochSource` that tails the store for newly sealed epochs
  in index order (a torn / still-being-written stream is simply not
  ready yet: the read is retried on the next poll, never trusted --
  and after ``torn_limit`` consecutive failures on the same epoch the
  stream is classified corrupt, so batch mode can reject the tenant
  instead of waiting forever);
* a :class:`TenantStream` -- a :class:`~repro.continuous.ContinuousAuditor`
  whose per-epoch audits are compiled to DAGs and executed by the
  *shared* pool instead of inline.  Everything that defines the
  continuous-audit semantics is inherited unchanged: the bounded
  pending queue, the sealed/verified/rejected journal, checkpoint
  chaining, crash resume (journal + chain verification), and the
  rejection cascade.  Per-tenant verdicts are therefore byte-identical
  to a solo run of the same epoch stream, whatever the other tenants do.

Backpressure: :meth:`TenantStream.offer` *refuses* an epoch when the
pending queue is full (recorded as a backpressure event) instead of
auditing synchronously like the solo driver -- the service must never
block its scheduling loop on one tenant.  The source's watermark only
moves past an epoch once it is enqueued, and the resume watermark
(``_next_index``) only advances on ACCEPT, exactly like the solo
driver.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.continuous.auditor import ContinuousAuditor, EpochVerdict
from repro.continuous.checkpoint import CheckpointStore
from repro.continuous.codec import (
    epoch_stream_name,
    list_epoch_streams,
    read_epoch_stream,
)
from repro.continuous.epoch import Epoch
from repro.continuous.journal import AuditJournal
from repro.errors import AdviceFormatError, KarousosError
from repro.storage.backend import StorageBackend, backend_for
from repro.storage.records import RecordFormatError, RecordTruncatedError
from repro.verifier.dag.driver import DagAuditor
from repro.verifier.dag.journal import NodeJournal

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")

_TORN = (AdviceFormatError, RecordFormatError, RecordTruncatedError)


@dataclass
class TenantConfig:
    """One ``--tenant`` specification."""

    app: str
    store: str
    name: str = ""
    quota: int = 0  # reexec-node tokens per fair round; 0 = unlimited
    max_pending: int = 4
    scheme: str = "file"
    state: str = ""  # state dir override (default: <state-root>/<name>)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.app
        if not _NAME_RE.match(self.name):
            raise ValueError(f"bad tenant name {self.name!r}")


def parse_tenant_spec(spec: str) -> TenantConfig:
    """Parse ``app=wiki,store=DIR[,quota=N][,name=X][,max_pending=N]
    [,scheme=file|gzip][,state=DIR]``."""
    fields = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad tenant field {part!r} (want key=value)")
        key, value = part.split("=", 1)
        fields[key.strip()] = value.strip()
    unknown = set(fields) - {"app", "store", "quota", "name", "max_pending",
                             "scheme", "state"}
    if unknown:
        raise ValueError(f"unknown tenant fields: {sorted(unknown)}")
    for required in ("app", "store"):
        if not fields.get(required):
            raise ValueError(f"tenant spec needs {required}=")
    return TenantConfig(
        app=fields["app"],
        store=fields["store"],
        name=fields.get("name", ""),
        quota=int(fields.get("quota", 0)),
        max_pending=int(fields.get("max_pending", 4)),
        scheme=fields.get("scheme", "file"),
        state=fields.get("state", ""),
    )


class EpochSource:
    """Tails a storage backend for sealed epochs, strictly in index
    order.  ``epoch-<k>`` is only consumed once it decodes completely;
    a torn or in-progress stream leaves the watermark in place so the
    next poll retries it.

    A sealer mid-write and a permanently corrupt (or tampered) stream
    look identical on any single read, so the source counts
    *consecutive* failed decodes of the same index (``torn_streak``).
    Once the streak reaches ``torn_limit`` the source classifies the
    stream as :attr:`corrupt` -- the daemon keeps retrying (a late
    sealer clears the classification), but ``--once`` mode uses it to
    stop waiting and fail the tenant instead of silently skipping the
    epoch.  ``torn_limit=0`` disables the classification (retry
    forever)."""

    def __init__(
        self,
        backend: StorageBackend,
        start_index: int = 0,
        torn_limit: int = 0,
    ):
        self.backend = backend
        self.next_index = max(0, int(start_index))
        self.torn_limit = max(0, int(torn_limit))
        self.torn_reads = 0
        self.torn_streak = 0
        self.ingested = 0
        self.last_error = ""
        self._torn_index = -1

    def _available(self) -> set:
        return set(list_epoch_streams(self.backend))

    def has_pending(self) -> bool:
        return epoch_stream_name(self.next_index) in self._available()

    @property
    def corrupt(self) -> bool:
        """The pending epoch failed ``torn_limit`` consecutive decodes:
        no sealer is going to finish it."""
        return self.torn_limit > 0 and self.torn_streak >= self.torn_limit

    def _record_torn(self, exc: Exception) -> None:
        self.torn_reads += 1
        if self._torn_index != self.next_index:
            self._torn_index = self.next_index
            self.torn_streak = 0
        self.torn_streak += 1
        self.last_error = f"{type(exc).__name__}: {exc}"

    def poll(self, limit: int) -> List[Epoch]:
        out: List[Epoch] = []
        if limit <= 0:
            return out
        available = self._available()
        while len(out) < limit:
            name = epoch_stream_name(self.next_index)
            if name not in available:
                break
            try:
                with self.backend.reader(name) as reader:
                    epoch = read_epoch_stream(reader)
            except _TORN as exc:
                self._record_torn(exc)
                break
            except KarousosError as exc:
                self._record_torn(exc)
                break
            if self._torn_index == self.next_index:
                # The sealer finished after all: clear the streak.
                self.torn_streak = 0
                self._torn_index = -1
                self.last_error = ""
            out.append(epoch)
            self.next_index += 1
            self.ingested += 1
        return out


class TenantStream(ContinuousAuditor):
    """A tenant's continuous audit, driven by the shared pool.

    State layout under ``state_dir``: ``audit/`` holds the checkpoint
    and audit-journal record streams (the same shape a solo
    ``repro audit --store`` run leaves behind), ``nodejournal/`` holds
    the per-epoch node journal for node-granular resume of the epoch
    that was in flight when the daemon stopped.
    """

    def __init__(
        self,
        config: TenantConfig,
        app,
        state_dir: str,
        metrics=None,
        dedup=None,
        hints=None,
        partition: Optional[str] = None,
    ):
        self.config = config
        self.name = config.name
        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)
        self._state_backend = backend_for(
            "file", os.path.join(state_dir, "audit")
        )
        node_journal = NodeJournal(
            backend_for("file", os.path.join(state_dir, "nodejournal"))
        )
        super().__init__(
            app,
            max_pending=config.max_pending,
            checkpoints=CheckpointStore(backend=self._state_backend),
            journal=AuditJournal(backend=self._state_backend),
            metrics=metrics,
            dedup=dedup,
            partition=partition,
            hints=hints,
            node_journal=node_journal,
        )

    # -- ingestion ---------------------------------------------------------

    def offer(self, epoch: Epoch) -> bool:
        """Enqueue a sealed epoch; False (backpressure) when the pending
        queue is full.  Unlike the solo driver's :meth:`submit`, a full
        queue never audits synchronously -- the caller must stop pulling
        from the source until the pool drains the queue."""
        if self._t0 is None:
            self._t0 = time.perf_counter()
        if epoch.index < self._next_index and epoch.index not in self.verdicts:
            self.skipped_resumed += 1
            return True
        if len(self._queue) >= self.max_pending:
            self.backpressure_events += 1
            return False
        self.journal.record("sealed", epoch.index, requests=epoch.request_count)
        self._queue.append(epoch)
        self.peak_pending = max(self.peak_pending, len(self._queue))
        return True

    @property
    def queue_room(self) -> int:
        return max(0, self.max_pending - len(self._queue))

    # -- pool integration --------------------------------------------------

    def start_job(self) -> Optional[Tuple[Epoch, DagAuditor, list, list]]:
        """Pop queued epochs until one needs re-execution; short-circuit
        verdicts (chain forged, predecessor rejected, missing
        checkpoint) are recorded inline.  Returns ``(epoch, dag, nodes,
        edges)`` for the pool, or None when the queue is drained."""
        while self._queue:
            epoch = self._queue.popleft()
            verdict, parent = self._preflight(epoch)
            if verdict is not None:
                self._record_verdict(epoch, verdict)
                continue
            dag = DagAuditor(
                self.app,
                epoch.trace,
                epoch.advice,
                app_name=self.config.app,
                partition=self.partition,
                hints=self.hints,
                dedup=self.dedup,
                carry=parent.carry_in() if parent is not None else None,
                metrics=self.metrics,
                progress=self._epoch_progress(epoch),
                checkpoint_index=epoch.index,
                checkpoint_parent=parent,
                journal=self.node_journal,
                resume="auto" if self.node_journal is not None else False,
            )
            nodes, edges = dag.prepare()
            return epoch, dag, nodes, edges
        return None

    def finish_job(self, epoch: Epoch, dag: DagAuditor) -> EpochVerdict:
        """Commit a pool-completed epoch exactly like the solo driver:
        journal the verdict, extend the checkpoint chain, account the
        stream metrics."""
        dag.finalize()
        result = dag.collect()
        verdict = self._commit(epoch, result, dag.checkpoint)
        self._record_verdict(epoch, verdict)
        return verdict

    def close(self) -> None:
        self.checkpoints.close()
        self.journal.close()


__all__ = ["EpochSource", "TenantConfig", "TenantStream", "parse_tenant_spec"]
