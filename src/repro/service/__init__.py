"""Fleet-scale audit service: N tenant streams over one shared DAG
scheduler, with backpressure and per-tenant quotas (DESIGN.md §15)."""

from repro.service.daemon import AuditService
from repro.service.http import StatusServer
from repro.service.pool import PlanJob, SharedDagPool
from repro.service.quota import TokenBucket
from repro.service.tenant import (
    EpochSource,
    TenantConfig,
    TenantStream,
    parse_tenant_spec,
)

__all__ = [
    "AuditService",
    "EpochSource",
    "PlanJob",
    "SharedDagPool",
    "StatusServer",
    "TenantConfig",
    "TenantStream",
    "TokenBucket",
    "parse_tenant_spec",
]
