"""Observability spine: metrics, spans, and structured diagnostics
(DESIGN.md §9)."""

from repro.obs.metrics import (
    SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NamespacedMetrics,
    NULL_METRICS,
    NullMetrics,
    Series,
    ensure_metrics,
    validate_metrics_doc,
)

__all__ = [
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NamespacedMetrics",
    "NULL_METRICS",
    "NullMetrics",
    "Series",
    "ensure_metrics",
    "validate_metrics_doc",
]
