"""Process-local metrics registry (DESIGN.md §9).

The observability spine every layer reports into: counters, gauges,
histograms (with nearest-rank quantiles), ordered series (per-epoch
curves), span timers, and structured rejection diagnostics.  One
:class:`MetricsRegistry` instance belongs to one driver run (an audit, a
serve); layers receive it by parameter and never reach for a global.

Neutrality is a hard requirement: instrumentation must not perturb
verdicts, rejection reasons, or deterministic statistics.  Everything
here is therefore *observe-only* -- no instrumented code path ever reads
a metric back to make a decision -- and the disabled form
(:data:`NULL_METRICS`) is a no-op object that instrumented code can call
unconditionally.  ``tests/integration/test_metrics_neutrality.py``
asserts the equivalence differentially.

Snapshots merge deterministically: counters add, gauges take the
maximum, histogram value multisets union, and series points key by
index -- all order-free operations, so merging per-worker snapshots
yields the same registry no matter which worker finished first.

Ownership model: one registry has one *writer* at a time -- drivers
record from the scheduling thread, workers record into worker-local
registries and hand snapshots back (see DESIGN.md §13).  The registry
is nevertheless safe against the two cross-thread operations the
fleet service actually performs: :meth:`MetricsRegistry.merge` and
:meth:`MetricsRegistry.snapshot` take an internal lock (so a status
endpoint can snapshot while the pump merges), and metric *creation* is
locked so two threads racing on the first use of a name cannot orphan
an increment.  Per-increment writes stay single-writer by design.

Multi-instance use (several auditors in one process, the fleet
service's tenants) namespaces instead of sharing:
:class:`NamespacedMetrics` prefixes every metric name with
``<namespace>.`` over a shared inner registry, and
``merge(snapshot, prefix="tenant.wiki.")`` folds a tenant's snapshot
into a fleet registry under its own key space -- two tenants can no
longer silently sum each other's counters.

The JSON document produced by :meth:`MetricsRegistry.to_json` is a
stable interface (schema id :data:`SCHEMA`); :func:`validate_metrics_doc`
is the schema check CI runs against emitted files.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional, Tuple, Union

Number = Union[int, float]

SCHEMA = "repro.metrics/1"


class Counter:
    """Monotonically increasing count (merge: sum)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """Last-set level (merge: max, the only order-free combination)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def set_max(self, value: Number) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Value multiset with nearest-rank quantiles (merge: union)."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[Number] = []

    def observe(self, value: Number) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> Number:
        return sum(self.values)

    def quantile(self, q: float) -> Optional[Number]:
        """Nearest-rank quantile over the observed values (None if empty)."""
        if not self.values:
            return None
        ordered = sorted(self.values)
        rank = max(1, -(-int(q * 100) * len(ordered) // 100))  # ceil(q*n)
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> Dict[str, Optional[Number]]:
        if not self.values:
            return {"count": 0, "sum": 0, "min": None, "max": None,
                    "p50": None, "p95": None}
        ordered = sorted(self.values)
        return {
            "count": len(ordered),
            "sum": sum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
        }


class Series:
    """Ordered (index, value) points -- per-epoch curves.  Points key by
    index, so merging snapshots is order-free (a re-recorded index
    overwrites, which never happens in well-behaved drivers)."""

    __slots__ = ("points",)

    def __init__(self) -> None:
        self.points: Dict[int, Number] = {}

    def point(self, index: int, value: Number) -> None:
        self.points[int(index)] = value

    def ordered(self) -> List[Tuple[int, Number]]:
        return sorted(self.points.items())


class _Span:
    """Context manager recording elapsed seconds into a histogram."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram):
        self._hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """A namespace of metrics plus structured rejection diagnostics."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, Series] = {}
        self.diagnostics: List[Dict[str, object]] = []
        # Reentrant: merge() creates metrics while holding it.
        self._lock = threading.RLock()

    # -- metric accessors (create on first use) -----------------------------
    #
    # The fast path (metric exists) is a lock-free dict read; only the
    # creation miss takes the lock, so two threads racing on a name's
    # first use both end up holding the same object.

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, Histogram())

    def series(self, name: str) -> Series:
        try:
            return self._series[name]
        except KeyError:
            with self._lock:
                return self._series.setdefault(name, Series())

    def span(self, name: str) -> _Span:
        """Time a block: ``with metrics.span("pipeline.stage.reexec.seconds")``."""
        return _Span(self.histogram(name))

    def diagnostic(self, stage: str, reason: str, detail: str = "",
                   **ids: object) -> None:
        """Structured rejection diagnostic: which stage, which reason, and
        any offending identifiers the caller can name."""
        entry: Dict[str, object] = {"stage": stage, "reason": reason,
                                    "detail": detail}
        entry.update(ids)
        self.diagnostics.append(entry)

    # -- snapshots and merge -------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-able document of everything recorded (the wire format of
        the worker -> parent hand-off and of ``--metrics-out``)."""
        with self._lock:
            return {
                "schema": SCHEMA,
                "counters": {k: v.value for k, v in sorted(self._counters.items())},
                "gauges": {k: v.value for k, v in sorted(self._gauges.items())},
                "histograms": {
                    k: dict(v.summary(), values=list(v.values))
                    for k, v in sorted(self._histograms.items())
                },
                "series": {
                    k: [[i, val] for i, val in v.ordered()]
                    for k, v in sorted(self._series.items())
                },
                "diagnostics": list(self.diagnostics),
            }

    def merge(
        self, snapshot: Optional[Dict[str, object]], prefix: str = ""
    ) -> None:
        """Fold a snapshot (e.g. a worker's) into this registry.

        ``prefix`` (e.g. ``"tenant.wiki."``) rewrites every metric name
        into its own key space -- the fleet-merge path that keeps
        per-tenant registries from silently summing into each other.
        Diagnostics gain a ``namespace`` field instead of a renamed key.
        The whole fold holds the registry lock, so concurrent merges
        from different threads interleave without losing increments.
        """
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.counter(prefix + name).inc(value)
            for name, value in snapshot.get("gauges", {}).items():
                self.gauge(prefix + name).set_max(value)
            for name, doc in snapshot.get("histograms", {}).items():
                self.histogram(prefix + name).values.extend(doc.get("values", ()))
            for name, points in snapshot.get("series", {}).items():
                series = self.series(prefix + name)
                for index, value in points:
                    series.point(index, value)
            if prefix:
                self.diagnostics.extend(
                    dict(entry, namespace=prefix.rstrip("."))
                    for entry in snapshot.get("diagnostics", ())
                )
            else:
                self.diagnostics.extend(snapshot.get("diagnostics", ()))

    # -- JSON ----------------------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, doc: str) -> "MetricsRegistry":
        registry = cls()
        registry.merge(json.loads(doc))
        return registry


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: Number = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0

    def set(self, value: Number) -> None:
        pass

    def set_max(self, value: Number) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: Number) -> None:
        pass


class _NullSeries:
    __slots__ = ()

    def point(self, index: int, value: Number) -> None:
        pass


class NullMetrics(MetricsRegistry):
    """The disabled registry: every operation is a no-op.

    Instrumented code holds a reference and calls it unconditionally;
    the cost of disabled metrics is one attribute lookup and one no-op
    call per instrumentation point.
    """

    enabled = False

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()
    _SERIES = _NullSeries()
    _SPAN = _NullSpan()

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return self._COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return self._GAUGE  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:  # type: ignore[override]
        return self._HISTOGRAM  # type: ignore[return-value]

    def series(self, name: str) -> Series:  # type: ignore[override]
        return self._SERIES  # type: ignore[return-value]

    def span(self, name: str) -> _Span:  # type: ignore[override]
        return self._SPAN  # type: ignore[return-value]

    def diagnostic(self, stage: str, reason: str, detail: str = "",
                   **ids: object) -> None:
        pass

    def merge(self, snapshot: Optional[Dict[str, object]],
              prefix: str = "") -> None:
        pass


NULL_METRICS = NullMetrics()


class NamespacedMetrics(MetricsRegistry):
    """A registry view that prefixes every metric name with
    ``<namespace>.`` and records into a shared inner registry.

    This is how several auditors coexist in one process without key
    collisions: each gets ``NamespacedMetrics("tenant.wiki", fleet)``
    and its ``pipeline.verdicts`` lands as
    ``tenant.wiki.pipeline.verdicts`` in the fleet registry.
    Diagnostics gain a ``namespace`` field.  Snapshots operate on the
    *inner* registry's full contents (no scoped sub-snapshot) --
    callers that need a per-tenant document should keep a private
    ``MetricsRegistry`` and fold it with
    ``fleet.merge(snap, prefix=...)`` instead.

    Wrapping :data:`NULL_METRICS` (or any disabled registry) returns the
    inner object unchanged, preserving the zero-cost disabled path.
    """

    def __new__(cls, namespace: str, inner: Optional[MetricsRegistry] = None):
        inner = ensure_metrics(inner)
        if not inner.enabled:
            return inner  # type: ignore[return-value]
        return super().__new__(cls)

    def __init__(self, namespace: str,
                 inner: Optional[MetricsRegistry] = None) -> None:
        inner = ensure_metrics(inner)
        if self is inner:  # __new__ short-circuited to the disabled inner
            return
        super().__init__()
        self._namespace = namespace.rstrip(".")
        self._prefix = self._namespace + "." if self._namespace else ""
        self._inner = inner
        self.diagnostics = inner.diagnostics

    @property
    def namespace(self) -> str:
        return self._namespace

    def counter(self, name: str) -> Counter:
        return self._inner.counter(self._prefix + name)

    def gauge(self, name: str) -> Gauge:
        return self._inner.gauge(self._prefix + name)

    def histogram(self, name: str) -> Histogram:
        return self._inner.histogram(self._prefix + name)

    def series(self, name: str) -> Series:
        return self._inner.series(self._prefix + name)

    def diagnostic(self, stage: str, reason: str, detail: str = "",
                   **ids: object) -> None:
        if "namespace" not in ids and self._namespace:
            ids["namespace"] = self._namespace
        self._inner.diagnostic(stage, reason, detail, **ids)

    def snapshot(self) -> Dict[str, object]:
        return self._inner.snapshot()

    def merge(self, snapshot: Optional[Dict[str, object]],
              prefix: str = "") -> None:
        self._inner.merge(snapshot, prefix=prefix or self._prefix)


def ensure_metrics(metrics: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Normalise an optional metrics parameter to a callable registry."""
    return NULL_METRICS if metrics is None else metrics


# -- schema validation -----------------------------------------------------


def validate_metrics_doc(doc: object) -> None:
    """Validate a parsed ``--metrics-out`` document against the schema
    documented in DESIGN.md §9.  Raises ``ValueError`` on any deviation;
    the CI observability job and the unit suite both run this."""
    if not isinstance(doc, dict):
        raise ValueError("metrics document must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    for section in ("counters", "gauges", "histograms", "series"):
        if not isinstance(doc.get(section), dict):
            raise ValueError(f"{section!r} must be an object")
    if not isinstance(doc.get("diagnostics"), list):
        raise ValueError("'diagnostics' must be an array")
    num = (int, float)
    for name, value in doc["counters"].items():
        if not isinstance(value, num) or isinstance(value, bool):
            raise ValueError(f"counter {name!r} must be a number")
    for name, value in doc["gauges"].items():
        if not isinstance(value, num) or isinstance(value, bool):
            raise ValueError(f"gauge {name!r} must be a number")
    for name, hist in doc["histograms"].items():
        if not isinstance(hist, dict):
            raise ValueError(f"histogram {name!r} must be an object")
        for key in ("count", "sum", "min", "max", "p50", "p95", "values"):
            if key not in hist:
                raise ValueError(f"histogram {name!r} missing {key!r}")
        if not isinstance(hist["values"], list):
            raise ValueError(f"histogram {name!r} values must be an array")
        if hist["count"] != len(hist["values"]):
            raise ValueError(f"histogram {name!r} count disagrees with values")
    for name, points in doc["series"].items():
        if not isinstance(points, list) or any(
            not (isinstance(p, list) and len(p) == 2 and isinstance(p[0], int))
            for p in points
        ):
            raise ValueError(f"series {name!r} must be [[index, value], ...]")
    for entry in doc["diagnostics"]:
        if not isinstance(entry, dict) or "stage" not in entry or "reason" not in entry:
            raise ValueError("diagnostics entries need 'stage' and 'reason'")
