"""Experiment drivers for the paper's evaluation (section 6).

Three measurements, one per figure family:

* :func:`measure_server_overhead` (Figure 6): wall-clock to serve a
  workload on the unmodified server vs the Karousos server, after a
  warm-up prefix (the paper warms with 120 of 600 requests and reports
  the remaining 480).
* :func:`measure_verification` (Figure 7): wall-clock for the Karousos
  verifier, the Orochi-JS verifier (same audit algorithm consuming
  Orochi-JS advice), and the sequential re-executor.
* :func:`measure_advice_sizes` (Figure 8): serialized advice bytes under
  both policies, with the variable-log share.

All runs are seeded and deterministic; Karousos and Orochi-JS servers see
identical schedules (the dispatch schedule depends only on the seed and
the activation structure, which policies do not affect).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.advice.records import Advice
from repro.advice.sizing import advice_breakdown, advice_size_bytes
from repro.apps import feed_app, motd_app, stackdump_app, wiki_app
from repro.baselines import sequential_reexecute
from repro.kem.program import AppSpec
from repro.kem.runtime import Runtime, ServerPolicy
from repro.kem.scheduler import RandomScheduler
from repro.server import KarousosPolicy, OrochiPolicy, UnmodifiedPolicy
from repro.store.kv import IsolationLevel, KVStore
from repro.trace.trace import Request, Trace
from repro.verifier import audit
from repro.workload import workload_for

_APPS: Dict[str, Tuple[Callable[[], AppSpec], bool]] = {
    "motd": (motd_app, False),
    "stacks": (stackdump_app, True),
    "wiki": (wiki_app, True),
    "feed": (feed_app, True),
}


@dataclass(frozen=True)
class ExperimentConfig:
    app_name: str
    mix: str = "mixed"
    n_requests: int = 150
    concurrency: int = 10
    seed: int = 0
    isolation: IsolationLevel = IsolationLevel.SERIALIZABLE
    warmup_fraction: float = 0.2
    # Audit-side parallelism: >1 shards re-execution groups over workers.
    jobs: int = 1


def make_app(name: str) -> AppSpec:
    return _APPS[name][0]()


def app_needs_store(name: str) -> bool:
    return _APPS[name][1]


def make_store(cfg: ExperimentConfig) -> Optional[KVStore]:
    if not app_needs_store(cfg.app_name):
        return None
    return KVStore(cfg.isolation)


def _workload(cfg: ExperimentConfig) -> List[Request]:
    return workload_for(cfg.app_name, cfg.n_requests, mix=cfg.mix, seed=cfg.seed)


def _serve_with_warmup(
    cfg: ExperimentConfig, policy: ServerPolicy
) -> Tuple[float, Trace, Optional[Advice], Runtime]:
    """Serve the workload; time only the post-warmup suffix."""
    requests = _workload(cfg)
    split = int(len(requests) * cfg.warmup_fraction)
    runtime = Runtime(
        make_app(cfg.app_name),
        policy,
        store=make_store(cfg),
        scheduler=RandomScheduler(cfg.seed),
        concurrency=cfg.concurrency,
    )
    policy.runtime = runtime
    runtime.serve(requests[:split])
    started = time.perf_counter()
    runtime.serve(requests[split:])
    elapsed = time.perf_counter() - started
    return elapsed, runtime.collector.trace(), policy.advice(), runtime


# -- Figure 6 ----------------------------------------------------------------


@dataclass
class ServerComparison:
    unmodified_seconds: float
    karousos_seconds: float

    @property
    def overhead(self) -> float:
        return self.karousos_seconds / self.unmodified_seconds


def measure_server_overhead(cfg: ExperimentConfig, repeats: int = 1) -> ServerComparison:
    """Median server-side processing time, Karousos vs unmodified."""
    unmodified = []
    karousos = []
    for r in range(repeats):
        unmodified.append(_serve_with_warmup(cfg, UnmodifiedPolicy())[0])
        karousos.append(_serve_with_warmup(cfg, KarousosPolicy())[0])
    unmodified.sort()
    karousos.sort()
    return ServerComparison(
        unmodified_seconds=unmodified[len(unmodified) // 2],
        karousos_seconds=karousos[len(karousos) // 2],
    )


# -- Figure 7 ------------------------------------------------------------------


@dataclass
class VerifierComparison:
    karousos_seconds: float
    orochi_seconds: float
    sequential_seconds: float
    karousos_groups: int
    orochi_groups: int
    karousos_accepted: bool
    orochi_accepted: bool
    sequential_match_fraction: float


def measure_verification(cfg: ExperimentConfig, repeats: int = 1) -> VerifierComparison:
    """Total verification time for the Karousos verifier, the Orochi-JS
    verifier, and the sequential re-executor (no warmup split: the paper
    verifies the full 600-request trace).

    With ``repeats > 1`` each verifier re-runs on the same trace/advice and
    the minimum time is reported (the standard noise-robust estimator).
    """
    full = ExperimentConfig(**{**cfg.__dict__, "warmup_fraction": 0.0})

    _, k_trace, k_advice, _ = _serve_with_warmup(full, KarousosPolicy())
    _, o_trace, o_advice, _ = _serve_with_warmup(full, OrochiPolicy())
    store_factory = (
        (lambda: KVStore(cfg.isolation)) if app_needs_store(cfg.app_name) else None
    )

    k_seconds, o_seconds, seq_seconds = [], [], []
    k_result = o_result = seq = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        k_result = audit(make_app(cfg.app_name), k_trace, k_advice,
                         parallelism=cfg.jobs)
        k_seconds.append(time.perf_counter() - started)

        started = time.perf_counter()
        o_result = audit(make_app(cfg.app_name), o_trace, o_advice,
                         parallelism=cfg.jobs)
        o_seconds.append(time.perf_counter() - started)

        seq = sequential_reexecute(make_app(cfg.app_name), k_trace, store_factory)
        seq_seconds.append(seq.elapsed_seconds)

    return VerifierComparison(
        karousos_seconds=min(k_seconds),
        orochi_seconds=min(o_seconds),
        sequential_seconds=min(seq_seconds),
        karousos_groups=int(k_result.stats.get("groups", 0)),
        orochi_groups=int(o_result.stats.get("groups", 0)),
        karousos_accepted=k_result.accepted,
        orochi_accepted=o_result.accepted,
        sequential_match_fraction=seq.match_fraction,
    )


@dataclass
class ParallelAuditComparison:
    """Sequential vs sharded audit of one served trace (same advice)."""

    sequential_seconds: float
    parallel_seconds: Dict[int, float]  # jobs -> seconds
    sequential_accepted: bool
    parallel_accepted: Dict[int, bool]
    stats_identical: Dict[int, bool]  # modulo elapsed_seconds
    mode_used: Dict[int, str]

    def speedup(self, jobs: int) -> float:
        return self.sequential_seconds / self.parallel_seconds[jobs]


def measure_parallel_audit(
    cfg: ExperimentConfig,
    jobs_list: Tuple[int, ...] = (2, 4),
    repeats: int = 1,
    mode: str = "auto",
) -> ParallelAuditComparison:
    """Audit one Karousos-served trace sequentially and with the parallel
    pipeline at each worker count in ``jobs_list``; minimum time over
    ``repeats`` per configuration.  Also records whether verdict and
    deterministic stats matched the sequential audit (they must)."""
    from repro.verifier import Auditor

    full = ExperimentConfig(**{**cfg.__dict__, "warmup_fraction": 0.0})
    _, trace, advice, _ = _serve_with_warmup(full, KarousosPolicy())

    def strip(stats: Dict[str, float]) -> Dict[str, float]:
        return {k: v for k, v in stats.items() if k != "elapsed_seconds"}

    seq_seconds = []
    seq_result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        seq_result = audit(make_app(cfg.app_name), trace, advice)
        seq_seconds.append(time.perf_counter() - started)

    par_seconds: Dict[int, float] = {}
    par_accepted: Dict[int, bool] = {}
    stats_identical: Dict[int, bool] = {}
    mode_used: Dict[int, str] = {}
    for jobs in jobs_list:
        timings = []
        for _ in range(max(1, repeats)):
            auditor = Auditor(
                make_app(cfg.app_name), trace, advice,
                parallelism=jobs, parallel_mode=mode,
            )
            started = time.perf_counter()
            result = auditor.run()
            timings.append(time.perf_counter() - started)
        par_seconds[jobs] = min(timings)
        par_accepted[jobs] = result.accepted
        stats_identical[jobs] = (
            result.accepted == seq_result.accepted
            and result.reason == seq_result.reason
            and strip(result.stats) == strip(seq_result.stats)
        )
        mode_used[jobs] = auditor.parallel.mode_used if auditor.parallel else "sequential"

    return ParallelAuditComparison(
        sequential_seconds=min(seq_seconds),
        parallel_seconds=par_seconds,
        sequential_accepted=seq_result.accepted,
        parallel_accepted=par_accepted,
        stats_identical=stats_identical,
        mode_used=mode_used,
    )


# -- audit phase breakdown (DESIGN.md §9) --------------------------------------


@dataclass
class AuditPhaseBreakdown:
    """Where one audit's wall-clock went, stage by stage.

    ``stage_seconds`` follows the pipeline's stage order (decode,
    preprocess, isolation, reexec, postprocess, checkpoint);
    ``metrics`` is the full registry snapshot of the run.  Under the DAG
    driver (``scheduler=``), ``node_seconds`` carries the per-node spans
    the stage totals aggregate: ``(epoch, stage, group, seconds)``."""

    accepted: bool
    elapsed_seconds: float
    stage_seconds: Dict[str, float]
    metrics: Dict[str, object]
    driver: str = "pipeline"
    node_seconds: List[Tuple[int, str, Optional[str], float]] = field(
        default_factory=list
    )

    @property
    def stage_total(self) -> float:
        return sum(self.stage_seconds.values())

    def fractions(self) -> Dict[str, float]:
        total = self.stage_total or 1.0
        return {name: sec / total for name, sec in self.stage_seconds.items()}


def measure_audit_phases(
    cfg: ExperimentConfig, scheduler: Optional[str] = None
) -> AuditPhaseBreakdown:
    """Serve once on the Karousos server, then audit with the staged
    pipeline's per-stage timers on; reports the phase breakdown the paper
    discusses qualitatively (preprocess vs re-execution vs postprocess).

    ``scheduler`` routes the audit through the DAG driver instead
    (DESIGN.md §13): stage totals then aggregate the per-node spans also
    returned in ``node_seconds``."""
    from repro.obs import MetricsRegistry
    from repro.verifier import Auditor

    full = ExperimentConfig(**{**cfg.__dict__, "warmup_fraction": 0.0})
    _, trace, advice, _ = _serve_with_warmup(full, KarousosPolicy())
    metrics = MetricsRegistry()
    auditor = Auditor(
        make_app(cfg.app_name), trace, advice,
        parallelism=cfg.jobs, metrics=metrics, scheduler=scheduler,
    )
    result = auditor.run()
    return AuditPhaseBreakdown(
        accepted=result.accepted,
        elapsed_seconds=result.stats["elapsed_seconds"],
        stage_seconds=dict(auditor.stage_seconds),
        metrics=metrics.snapshot(),
        driver="dag" if auditor.dag is not None else "pipeline",
        node_seconds=list(auditor.dag.node_seconds) if auditor.dag else [],
    )


# -- continuous auditing (DESIGN.md §6) ---------------------------------------


@dataclass
class ContinuousAuditComparison:
    """Epoch-sealed streaming audit vs the monolithic audit of one run."""

    seal_every: int
    epochs: int
    monolithic_seconds: float
    continuous_seconds: float  # sum of per-epoch audit times
    first_verdict_seconds: float  # time from first submit to first verdict
    peak_pending: int
    backpressure_events: int
    monolithic_accepted: bool
    continuous_accepted: bool
    handlers_match: bool  # per-epoch handler executions sum to monolithic

    @property
    def verdicts_match(self) -> bool:
        return self.monolithic_accepted == self.continuous_accepted


def measure_continuous_audit(
    cfg: ExperimentConfig,
    seal_every: int,
    max_pending: int = 4,
    repeats: int = 1,
) -> ContinuousAuditComparison:
    """Serve once with an epoch sealer, then audit the sealed stream
    continuously (checkpoint hand-off between epochs) and monolithically;
    minimum audit time over ``repeats`` for both sides."""
    from repro.continuous import ContinuousAuditor, EpochSealer
    from repro.server.run import run_server

    app_fn = _APPS[cfg.app_name][0]
    sealer = EpochSealer(seal_every)
    run = run_server(
        app_fn(),
        _workload(cfg),
        KarousosPolicy(),
        store=make_store(cfg),
        scheduler=RandomScheduler(cfg.seed),
        concurrency=cfg.concurrency,
        sealer=sealer,
    )

    mono_seconds = []
    mono_result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        mono_result = audit(app_fn(), run.trace, run.advice, parallelism=cfg.jobs)
        mono_seconds.append(time.perf_counter() - started)

    cont_seconds = []
    auditor = None
    for _ in range(max(1, repeats)):
        auditor = ContinuousAuditor(
            app_fn(), parallelism=cfg.jobs, max_pending=max_pending
        )
        started = time.perf_counter()
        for epoch in sealer.epochs:
            auditor.submit(epoch)
        auditor.drain()
        cont_seconds.append(time.perf_counter() - started)

    stats = auditor.stats()
    handlers_match = stats["handlers_executed"] == mono_result.stats.get(
        "handlers_executed", -1
    )
    return ContinuousAuditComparison(
        seal_every=seal_every,
        epochs=len(sealer.epochs),
        monolithic_seconds=min(mono_seconds),
        continuous_seconds=min(cont_seconds),
        first_verdict_seconds=stats.get("first_verdict_seconds", 0.0),
        peak_pending=int(stats["peak_pending"]),
        backpressure_events=int(stats["backpressure_events"]),
        monolithic_accepted=mono_result.accepted,
        continuous_accepted=auditor.accepted,
        handlers_match=handlers_match,
    )


# -- Figure 8 ---------------------------------------------------------------------


@dataclass
class AdviceSizes:
    karousos_bytes: int
    orochi_bytes: int
    karousos_breakdown: Dict[str, int] = field(default_factory=dict)
    orochi_breakdown: Dict[str, int] = field(default_factory=dict)

    @property
    def variable_log_share(self) -> float:
        total = self.karousos_bytes or 1
        return self.karousos_breakdown.get("variable_logs", 0) / total


def measure_advice_sizes(cfg: ExperimentConfig) -> AdviceSizes:
    full = ExperimentConfig(**{**cfg.__dict__, "warmup_fraction": 0.0})
    _, _, k_advice, _ = _serve_with_warmup(full, KarousosPolicy())
    _, _, o_advice, _ = _serve_with_warmup(full, OrochiPolicy())
    return AdviceSizes(
        karousos_bytes=advice_size_bytes(k_advice),
        orochi_bytes=advice_size_bytes(o_advice),
        karousos_breakdown=advice_breakdown(k_advice),
        orochi_breakdown=advice_breakdown(o_advice),
    )


# -- Storage layer (DESIGN.md §8) ----------------------------------------------

STORAGE_SCHEMES = ("json", "memory", "file", "gzip")


def _deterministic_stats(result) -> Dict[str, float]:
    return {k: v for k, v in result.stats.items() if k != "elapsed_seconds"}


def _scheme_backend(scheme: str, root: str):
    from repro.storage import backend_for

    if scheme == "memory":
        return backend_for("memory")
    return backend_for(scheme, os.path.join(root, scheme))


@dataclass
class StorageIoComparison:
    """Round-trip cost of each record-store scheme vs legacy JSON, on one
    served trace+advice pair; times are minima over ``repeats``."""

    trace_events: int
    encode_seconds: Dict[str, float] = field(default_factory=dict)
    decode_seconds: Dict[str, float] = field(default_factory=dict)
    stored_bytes: Dict[str, int] = field(default_factory=dict)
    verdict_matches: Dict[str, bool] = field(default_factory=dict)

    @property
    def all_verdicts_match(self) -> bool:
        return all(self.verdict_matches.values())


def measure_storage_io(
    cfg: ExperimentConfig, root: str, repeats: int = 1
) -> StorageIoComparison:
    """Serve once, then push the trace+advice through every storage scheme:
    encode time, decode time, bytes at rest, and whether the audit of the
    decoded copy matches the audit of the original."""
    from repro.advice.codec import (
        decode_advice,
        encode_advice,
        read_advice,
        write_advice,
    )
    from repro.trace.codec import decode_trace, encode_trace, read_trace, write_trace

    full = ExperimentConfig(**{**cfg.__dict__, "warmup_fraction": 0.0})
    _, trace, advice, _ = _serve_with_warmup(full, KarousosPolicy())
    app_fn = _APPS[cfg.app_name][0]
    baseline = audit(app_fn(), trace, advice)
    base_key = (
        baseline.accepted, baseline.reason, _deterministic_stats(baseline)
    )
    out = StorageIoComparison(trace_events=len(trace))
    for scheme in STORAGE_SCHEMES:
        enc, dec = [], []
        decoded = None
        for _ in range(max(1, repeats)):
            if scheme == "json":
                started = time.perf_counter()
                trace_doc = encode_trace(trace)
                advice_doc = encode_advice(advice)
                enc.append(time.perf_counter() - started)
                out.stored_bytes[scheme] = len(trace_doc.encode()) + len(
                    advice_doc.encode()
                )
                started = time.perf_counter()
                decoded = (decode_trace(trace_doc), decode_advice(advice_doc))
                dec.append(time.perf_counter() - started)
            else:
                backend = _scheme_backend(scheme, root)
                started = time.perf_counter()
                write_trace(backend, "trace", trace)
                write_advice(backend, "advice", advice)
                enc.append(time.perf_counter() - started)
                out.stored_bytes[scheme] = _stored_bytes(scheme, backend, root)
                started = time.perf_counter()
                decoded = (
                    read_trace(backend, "trace"),
                    read_advice(backend, "advice"),
                )
                dec.append(time.perf_counter() - started)
        result = audit(app_fn(), decoded[0], decoded[1])
        out.encode_seconds[scheme] = min(enc)
        out.decode_seconds[scheme] = min(dec)
        out.verdict_matches[scheme] = base_key == (
            result.accepted, result.reason, _deterministic_stats(result)
        )
    return out


def _stored_bytes(scheme: str, backend, root: str) -> int:
    if scheme == "memory":
        return sum(len(backend.raw(n)) for n in backend.list_streams())
    suffix = backend.suffix
    directory = os.path.join(root, scheme)
    return sum(
        os.path.getsize(os.path.join(directory, f))
        for f in os.listdir(directory)
        if f.endswith(suffix)
    )


@dataclass
class StreamingMemoryComparison:
    """Continuous audit over stored epoch streams vs a monolithic audit of
    the same run, with peak-memory measurements of the audit phase.

    ``*_peak_bytes`` are tracemalloc peaks (deterministic, interpreter
    baseline excluded) -- the quantity the O(epoch) claim is asserted on.
    ``*_peak_rss_kib`` are each side's true peak RSS (``ru_maxrss``)
    measured in a fresh subprocess, when ``measure_rss`` is set."""

    seal_every: int
    epochs: int
    trace_events: int
    streamed_peak_bytes: int
    monolithic_peak_bytes: int
    streamed_accepted: bool
    monolithic_accepted: bool
    streamed_peak_rss_kib: Optional[int] = None
    monolithic_peak_rss_kib: Optional[int] = None

    @property
    def verdicts_match(self) -> bool:
        return self.streamed_accepted == self.monolithic_accepted


def serve_to_store(cfg: ExperimentConfig, seal_every: int, root: str) -> int:
    """Serve once, persisting trace, advice, and sealed epoch streams to a
    file backend at ``root``; returns the epoch count."""
    from repro.advice.codec import write_advice
    from repro.continuous import EpochSealer
    from repro.continuous.codec import write_epoch_stored
    from repro.server.run import run_server
    from repro.storage import FileBackend

    backend = FileBackend(root)
    sealer = EpochSealer(seal_every, sink=lambda e: write_epoch_stored(backend, e))
    spool = backend.create("trace", "trace")
    run = run_server(
        _APPS[cfg.app_name][0](),
        _workload(cfg),
        KarousosPolicy(),
        store=make_store(cfg),
        scheduler=RandomScheduler(cfg.seed),
        concurrency=cfg.concurrency,
        sealer=sealer,
        trace_spool=spool,
    )
    write_advice(backend, "advice", run.advice)
    return len(sealer.epochs)


def _audit_streamed(app_name: str, root: str) -> bool:
    from repro.continuous import ContinuousAuditor, iter_epochs_stored
    from repro.storage import FileBackend

    auditor = ContinuousAuditor(_APPS[app_name][0]())
    auditor.run(iter_epochs_stored(FileBackend(root)))
    return auditor.accepted


def _audit_monolithic(app_name: str, root: str) -> bool:
    from repro.advice.codec import read_advice
    from repro.trace.codec import read_trace
    from repro.storage import FileBackend

    backend = FileBackend(root)
    return audit(
        _APPS[app_name][0](),
        read_trace(backend, "trace"),
        read_advice(backend, "advice"),
    ).accepted


def _traced_peak(fn) -> Tuple[int, bool]:
    import tracemalloc

    tracemalloc.start()
    try:
        accepted = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, accepted


def _subprocess_peak_rss(mode: str, app_name: str, root: str) -> Tuple[int, bool]:
    """Run one audit mode in a fresh interpreter; its ru_maxrss is a true
    whole-process peak-RSS for that mode alone."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    code = (
        "import sys; from repro.harness.experiment import storage_child_main; "
        "sys.exit(storage_child_main(sys.argv[1:]))"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code, mode, app_name, root],
        capture_output=True, text=True, env=env, check=True,
    )
    doc = json.loads(proc.stdout.strip().splitlines()[-1])
    return int(doc["peak_rss_kib"]), bool(doc["accepted"])


def _own_peak_rss_kib() -> int:
    """This process's peak RSS.  Prefers /proc VmHWM, which execve resets,
    over ru_maxrss, which a forked child inherits from its parent -- a fat
    parent would otherwise floor the measurement."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource

    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def storage_child_main(argv: List[str]) -> int:
    """Subprocess entry point for :func:`_subprocess_peak_rss`."""
    mode, app_name, root = argv
    runner = _audit_streamed if mode == "streamed" else _audit_monolithic
    accepted = runner(app_name, root)
    print(json.dumps({"peak_rss_kib": _own_peak_rss_kib(), "accepted": accepted}))
    return 0


def measure_streaming_memory(
    cfg: ExperimentConfig,
    seal_every: int,
    root: str,
    measure_rss: bool = False,
) -> StreamingMemoryComparison:
    """Serve to a file store once, then audit it both ways and measure the
    audit phase's peak memory.  The streamed side consumes
    ``iter_epochs_stored`` lazily, so its peak tracks the epoch size; the
    monolithic side must hold the whole decoded trace+advice."""
    epochs = serve_to_store(cfg, seal_every, root)
    streamed_peak, streamed_ok = _traced_peak(
        lambda: _audit_streamed(cfg.app_name, root)
    )
    mono_peak, mono_ok = _traced_peak(
        lambda: _audit_monolithic(cfg.app_name, root)
    )
    out = StreamingMemoryComparison(
        seal_every=seal_every,
        epochs=epochs,
        trace_events=2 * cfg.n_requests,
        streamed_peak_bytes=streamed_peak,
        monolithic_peak_bytes=mono_peak,
        streamed_accepted=streamed_ok,
        monolithic_accepted=mono_ok,
    )
    if measure_rss:
        out.streamed_peak_rss_kib, _ = _subprocess_peak_rss(
            "streamed", cfg.app_name, root
        )
        out.monolithic_peak_rss_kib, _ = _subprocess_peak_rss(
            "monolithic", cfg.app_name, root
        )
    return out
