"""Plain-text series/table reporting for the benchmark harness.

Benchmarks print the same rows/series the paper's figures plot; these
helpers keep that output uniform and diff-friendly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_series(
    title: str,
    rows: List[Dict[str, object]],
    columns: Sequence[str],
) -> str:
    """A fixed-width table: one row per sweep point.  With no rows the
    header alone is returned (``max`` needs the header width seeded as a
    list element -- a bare ``*()`` unpacking would raise)."""
    widths = {
        c: max([len(c)] + [len(_fmt(r.get(c))) for r in rows]) for c in columns
    }
    lines = [title, "-" * len(title)]
    lines.append("  ".join(c.ljust(widths[c]) for c in columns))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def print_series(title: str, rows: List[Dict[str, object]], columns: Sequence[str]) -> None:
    print()
    print(format_series(title, rows, columns))


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
