"""Experiment harness: drives the servers, verifiers, and measurements
behind every figure of the paper's evaluation (section 6)."""

from repro.harness.experiment import (
    AdviceSizes,
    ContinuousAuditComparison,
    ExperimentConfig,
    ParallelAuditComparison,
    ServerComparison,
    StorageIoComparison,
    StreamingMemoryComparison,
    VerifierComparison,
    make_app,
    make_store,
    measure_advice_sizes,
    measure_continuous_audit,
    measure_parallel_audit,
    measure_server_overhead,
    measure_storage_io,
    measure_streaming_memory,
    measure_verification,
    serve_to_store,
)
from repro.harness.reporting import format_series, print_series

__all__ = [
    "AdviceSizes",
    "ContinuousAuditComparison",
    "ExperimentConfig",
    "ParallelAuditComparison",
    "ServerComparison",
    "StorageIoComparison",
    "StreamingMemoryComparison",
    "VerifierComparison",
    "make_app",
    "make_store",
    "measure_advice_sizes",
    "measure_continuous_audit",
    "measure_parallel_audit",
    "measure_server_overhead",
    "measure_storage_io",
    "measure_streaming_memory",
    "measure_verification",
    "serve_to_store",
    "format_series",
    "print_series",
]
