"""A library of advice/response tampering attacks.

Every attack mutates a deep copy; the honest inputs are never modified.
Attacks are deterministic (they pick the first eligible target) so
soundness tests are reproducible.  ``requires`` filters attacks by what
the honest advice actually contains (e.g. transaction-log attacks need a
transactional workload).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.advice.records import Advice, TxLogEntry, VariableLogEntry, TX_GET, TX_PUT
from repro.trace.trace import Trace

TamperFn = Callable[[Trace, Advice], Tuple[Trace, Advice]]


class AttackNotApplicable(LookupError):
    """The honest pair offers no target for this attack.

    Subclasses :class:`LookupError` so existing ``except LookupError``
    call sites keep working; raised both by the per-attack target lookups
    and by :meth:`Attack.apply` when a mutation turns out to be a no-op
    (which would make a soundness assertion vacuous).
    """


@dataclass(frozen=True)
class Attack:
    name: str
    description: str
    fn: TamperFn
    # What the honest advice must contain for the attack to have a target.
    requires: str = "any"  # any | variable_logs | tx_logs | handler_logs
    # Guaranteed attacks always yield an inexplicable execution; the rest
    # can coincidentally remain explainable on some workloads (the audit
    # accepting them is then *correct*) and get crafted dedicated tests.
    guaranteed: bool = True

    def apply(self, trace: Trace, advice: Advice) -> Tuple[Trace, Advice]:
        tampered_trace, tampered_advice = self.fn(trace, copy.deepcopy(advice))
        if tampered_trace == trace and tampered_advice == advice:
            raise AttackNotApplicable(
                f"{self.name}: mutation left the pair unchanged"
            )
        return tampered_trace, tampered_advice


def _first_write_key(advice: Advice):
    from repro.server.variables import INIT_RID

    for var_id in sorted(advice.variable_logs):
        for key in sorted(advice.variable_logs[var_id], key=repr):
            entry = advice.variable_logs[var_id][key]
            if entry.access == "write" and key[0] != INIT_RID:
                return var_id, key
    raise AttackNotApplicable("no logged write")


def _first_read_key(advice: Advice):
    for var_id in sorted(advice.variable_logs):
        for key in sorted(advice.variable_logs[var_id], key=repr):
            if advice.variable_logs[var_id][key].access == "read":
                return var_id, key
    raise AttackNotApplicable("no logged read")


# -- responses -----------------------------------------------------------


def tamper_response(trace: Trace, advice: Advice):
    rid = trace.request_ids()[0]
    return trace.with_response(rid, {"status": "pwned"}), advice


# -- variable logs ----------------------------------------------------------


def forge_write_value(trace: Trace, advice: Advice):
    var_id, key = _first_write_key(advice)
    old = advice.variable_logs[var_id][key]
    advice.variable_logs[var_id][key] = VariableLogEntry(
        "write", value={"forged": True}, prec=old.prec
    )
    return trace, advice


def drop_variable_log_entry(trace: Trace, advice: Advice):
    var_id, key = _first_read_key(advice)
    del advice.variable_logs[var_id][key]
    return trace, advice


def dangling_read_prec(trace: Trace, advice: Advice):
    """Point a logged read at a write that was never executed, with a
    fabricated value-carrying entry for it."""
    var_id, key = _first_read_key(advice)
    rid, hid, opnum = key
    ghost = (rid, hid, opnum + 1000)
    advice.variable_logs[var_id][ghost] = VariableLogEntry(
        "write", value={"ghost": True}, prec=None
    )
    advice.variable_logs[var_id][key] = VariableLogEntry("read", prec=ghost)
    return trace, advice


def flip_entry_kind(trace: Trace, advice: Advice):
    var_id, key = _first_write_key(advice)
    old = advice.variable_logs[var_id][key]
    advice.variable_logs[var_id][key] = VariableLogEntry(
        "read", value=None, prec=old.prec
    )
    return trace, advice


# -- handler logs ----------------------------------------------------------------


def _rid_with_handler_ops(advice: Advice) -> str:
    rid = next((r for r in sorted(advice.handler_logs) if advice.handler_logs[r]), None)
    if rid is None:
        raise AttackNotApplicable("no handler log entries")
    return rid


def drop_handler_log_entry(trace: Trace, advice: Advice):
    rid = _rid_with_handler_ops(advice)
    advice.handler_logs[rid] = advice.handler_logs[rid][1:]
    return trace, advice


def duplicate_handler_log_entry(trace: Trace, advice: Advice):
    rid = _rid_with_handler_ops(advice)
    log = advice.handler_logs[rid]
    advice.handler_logs[rid] = log + [log[-1]]
    return trace, advice


# -- opcounts --------------------------------------------------------------------------


def inflate_opcounts(trace: Trace, advice: Advice):
    key = sorted(advice.opcounts, key=repr)[0]
    advice.opcounts[key] += 2
    return trace, advice


def deflate_opcounts(trace: Trace, advice: Advice):
    key = next(
        (k for k in sorted(advice.opcounts, key=repr) if advice.opcounts[k] > 0),
        None,
    )
    if key is None:
        raise AttackNotApplicable("no handler claims any operations")
    advice.opcounts[key] -= 1
    return trace, advice


def drop_handler(trace: Trace, advice: Advice):
    key = sorted(advice.opcounts, key=repr)[0]
    del advice.opcounts[key]
    return trace, advice


def phantom_handler(trace: Trace, advice: Advice):
    (rid, hid) = sorted(advice.opcounts, key=repr)[0]
    from repro.core.ids import HandlerId

    advice.opcounts[(rid, HandlerId("ghost_function", hid, 99))] = 3
    return trace, advice


# -- responseEmittedBy -------------------------------------------------------------------


def lie_response_emitter(trace: Trace, advice: Advice):
    rid = next(
        (r for r in sorted(advice.response_emitted_by)
         if advice.response_emitted_by[r][1] > 0),
        None,
    )
    if rid is None:
        raise AttackNotApplicable("all responses emitted before any operation")
    hid, opnum = advice.response_emitted_by[rid]
    advice.response_emitted_by[rid] = (hid, opnum - 1)
    return trace, advice


def drop_response_emitter(trace: Trace, advice: Advice):
    rid = sorted(advice.response_emitted_by)[0]
    del advice.response_emitted_by[rid]
    return trace, advice


# -- tags ------------------------------------------------------------------------------------


def merge_tags(trace: Trace, advice: Advice):
    """Force two differently-shaped requests into one group."""
    tags = sorted(set(advice.tags.values()))
    if len(tags) < 2:
        raise AttackNotApplicable("only one group")
    victims = [r for r, t in sorted(advice.tags.items()) if t == tags[1]]
    for rid in victims:
        advice.tags[rid] = tags[0]
    return trace, advice


def drop_tag(trace: Trace, advice: Advice):
    rid = sorted(advice.tags)[0]
    del advice.tags[rid]
    return trace, advice


# -- transaction logs -----------------------------------------------------------------------------


def _first_tx_with(advice: Advice, optype: str):
    for key in sorted(advice.tx_logs, key=repr):
        for i, entry in enumerate(advice.tx_logs[key]):
            if entry.optype == optype:
                return key, i
    raise AttackNotApplicable(f"no {optype} entry")


def tamper_put_value(trace: Trace, advice: Advice):
    key, i = _first_tx_with(advice, TX_PUT)
    log = advice.tx_logs[key]
    old = log[i]
    log[i] = TxLogEntry(old.hid, old.opnum, old.optype, old.key, {"forged": True})
    return trace, advice


def swap_tx_entries(trace: Trace, advice: Advice):
    for key in sorted(advice.tx_logs, key=repr):
        log = advice.tx_logs[key]
        if len(log) >= 3:
            log[1], log[2] = log[2], log[1]
            return trace, advice
    raise AttackNotApplicable("no tx log with 3 entries")


def redirect_dictating_put(trace: Trace, advice: Advice):
    """Point a GET at a different PUT of the same key, if one exists."""
    target_key, target_i = None, None
    for key in sorted(advice.tx_logs, key=repr):
        for i, entry in enumerate(advice.tx_logs[key]):
            if entry.optype != TX_GET or entry.opcontents is None:
                continue
            # Find another PUT on the same key elsewhere.
            for other in sorted(advice.tx_logs, key=repr):
                for j, cand in enumerate(advice.tx_logs[other]):
                    if (
                        cand.optype == TX_PUT
                        and cand.key == entry.key
                        and (other[0], other[1], j) != entry.opcontents
                    ):
                        log = advice.tx_logs[key]
                        log[i] = TxLogEntry(
                            entry.hid,
                            entry.opnum,
                            entry.optype,
                            entry.key,
                            (other[0], other[1], j),
                        )
                        return trace, advice
    raise AttackNotApplicable("no alternative dictating PUT")


def truncate_write_order(trace: Trace, advice: Advice):
    if not advice.write_order:
        raise AttackNotApplicable("empty write order")
    advice.write_order = advice.write_order[:-1]
    return trace, advice


def reverse_write_order(trace: Trace, advice: Advice):
    if len({(r, repr(t)) for r, t, _ in advice.write_order}) < 2:
        raise AttackNotApplicable("write order too small to reorder meaningfully")
    advice.write_order = list(reversed(advice.write_order))
    return trace, advice


def duplicate_write_order_entry(trace: Trace, advice: Advice):
    if not advice.write_order:
        raise AttackNotApplicable("empty write order")
    advice.write_order = advice.write_order + [advice.write_order[0]]
    return trace, advice


# -- registry -----------------------------------------------------------------------------------------

ALL_ATTACKS: List[Attack] = [
    Attack("tamper-response", "server sent a different response", tamper_response),
    Attack(
        "forge-write-value",
        "variable log claims a write of a different value",
        forge_write_value,
        requires="variable_logs",
    ),
    Attack(
        "drop-variable-log-entry",
        "an R-concurrent read is missing from the variable log",
        drop_variable_log_entry,
        requires="variable_logs",
        # The unlogged read falls back to its R-preceding write; if that
        # write coincidentally holds the same value the execution stays
        # explainable (and accepting is correct).
        guaranteed=False,
    ),
    Attack(
        "dangling-read-prec",
        "a logged read points at a fabricated, never-executed write",
        dangling_read_prec,
        requires="variable_logs",
    ),
    Attack(
        "flip-entry-kind",
        "a logged write is re-labelled as a read",
        flip_entry_kind,
        requires="variable_logs",
    ),
    Attack(
        "drop-handler-log-entry",
        "a handler operation is missing from the handler log",
        drop_handler_log_entry,
        requires="handler_logs",
    ),
    Attack(
        "duplicate-handler-log-entry",
        "a handler operation appears twice",
        duplicate_handler_log_entry,
        requires="handler_logs",
    ),
    Attack("inflate-opcounts", "a handler claims extra operations", inflate_opcounts),
    Attack("deflate-opcounts", "a handler claims fewer operations", deflate_opcounts),
    Attack("drop-handler", "an executed handler is missing from opcounts", drop_handler),
    Attack("phantom-handler", "opcounts invents a never-run handler", phantom_handler),
    Attack(
        "lie-response-emitter",
        "responseEmittedBy points at the wrong operation",
        lie_response_emitter,
    ),
    Attack(
        "drop-response-emitter",
        "responseEmittedBy is missing a request",
        drop_response_emitter,
    ),
    Attack("merge-tags", "differently-shaped requests share a group", merge_tags),
    Attack("drop-tag", "a request has no grouping tag", drop_tag),
    Attack(
        "tamper-put-value",
        "a transaction log claims a different PUT value",
        tamper_put_value,
        requires="tx_logs",
    ),
    Attack(
        "swap-tx-entries",
        "operations within a transaction log are reordered",
        swap_tx_entries,
        requires="tx_logs",
    ),
    Attack(
        "redirect-dictating-put",
        "a GET claims to read from a different PUT",
        redirect_dictating_put,
        requires="tx_logs",
    ),
    Attack(
        "truncate-write-order",
        "the write order omits an installed write",
        truncate_write_order,
        requires="tx_logs",
    ),
    Attack(
        "reverse-write-order",
        "the write order reverses the installation order",
        reverse_write_order,
        requires="tx_logs",
        # Only provably wrong when some key has multiple committed writers
        # with a reader in between; see the crafted soundness tests.
        guaranteed=False,
    ),
    Attack(
        "duplicate-write-order-entry",
        "the write order lists one write twice",
        duplicate_write_order_entry,
        requires="tx_logs",
    ),
]


def _passes_field_filter(attack: Attack, advice: Advice) -> bool:
    if attack.requires == "variable_logs" and not advice.variable_logs:
        return False
    if attack.requires == "tx_logs" and not advice.tx_logs:
        return False
    if attack.requires == "handler_logs" and not any(advice.handler_logs.values()):
        return False
    return True


def applicable_attacks(advice: Advice, trace: Optional[Trace] = None) -> List[Attack]:
    """Attacks with at least one target in this advice bundle.

    With only ``advice``, filters on the coarse ``requires`` field (the
    historic behaviour: cheap, but an attack may still find no concrete
    target and raise :class:`AttackNotApplicable` when applied).  Given
    the ``trace`` as well, each surviving attack is *probed* -- actually
    applied to a copy -- so the result contains exactly the attacks that
    produce a real mutation on this pair; preconditions can no longer
    fail silently."""
    out = []
    for attack in ALL_ATTACKS:
        if not _passes_field_filter(attack, advice):
            continue
        if trace is not None:
            try:
                attack.apply(trace, advice)
            except AttackNotApplicable:
                continue
        out.append(attack)
    return out
