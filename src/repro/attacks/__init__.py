"""Adversarial servers for soundness testing (paper sections 4.3-4.4).

Each attack takes an honestly produced (trace, advice) pair and returns a
tampered pair, modelling a misbehaving server that sent different
responses and/or fabricated advice.  Soundness (Definition 6) requires the
audit to reject every one of them.
"""

from repro.attacks.tamper import (
    ALL_ATTACKS,
    Attack,
    AttackNotApplicable,
    applicable_attacks,
)

__all__ = ["ALL_ATTACKS", "Attack", "AttackNotApplicable", "applicable_attacks"]
