"""Karousos: efficient auditing of event-driven web applications.

A complete Python reproduction of Tzialla et al., EuroSys 2024.  The
public API covers the full pipeline:

1. write an application against the KEM handler-context API
   (:class:`AppSpec`; see ``repro.apps`` for three complete examples);
2. serve a workload on a server -- unmodified, Karousos (advice
   collecting), or Orochi-JS -- via :func:`run_server`;
3. audit the resulting trusted trace against the untrusted advice with
   :func:`audit`.

>>> from repro import KarousosPolicy, Request, audit, run_server
>>> from repro.apps import motd_app
>>> run = run_server(motd_app(), [Request.make("r1", "get", day="mon")],
...                  KarousosPolicy())
>>> audit(motd_app(), run.trace, run.advice).accepted
True
"""

from repro.advice import Advice, advice_breakdown, advice_size_bytes
from repro.baselines import SequentialResult, sequential_reexecute
from repro.errors import (
    AuditRejected,
    KarousosError,
    ProgramError,
    TransactionAborted,
    TransactionRetry,
)
from repro.kem import (
    AppSpec,
    FifoScheduler,
    InitContext,
    LifoScheduler,
    RandomScheduler,
    Runtime,
    Scheduler,
)
from repro.server import (
    KarousosPolicy,
    OrochiPolicy,
    ServerRun,
    UnmodifiedPolicy,
    run_server,
)
from repro.store import IsolationLevel, KVStore
from repro.continuous import (
    AuditJournal,
    Checkpoint,
    CheckpointStore,
    ContinuousAuditor,
    Epoch,
    EpochSealer,
    slice_epochs,
)
from repro.trace import Collector, Request, Trace
from repro.verifier import AuditResult, Auditor, audit
from repro.verifier.carry import CarryIn
from repro.verifier.oooaudit import ooo_audit

__version__ = "1.0.0"

__all__ = [
    "Advice",
    "advice_breakdown",
    "advice_size_bytes",
    "SequentialResult",
    "sequential_reexecute",
    "AuditRejected",
    "KarousosError",
    "ProgramError",
    "TransactionAborted",
    "TransactionRetry",
    "AppSpec",
    "InitContext",
    "Runtime",
    "Scheduler",
    "FifoScheduler",
    "LifoScheduler",
    "RandomScheduler",
    "KarousosPolicy",
    "OrochiPolicy",
    "UnmodifiedPolicy",
    "ServerRun",
    "run_server",
    "IsolationLevel",
    "KVStore",
    "Collector",
    "Request",
    "Trace",
    "AuditResult",
    "Auditor",
    "audit",
    "ooo_audit",
    "AuditJournal",
    "CarryIn",
    "Checkpoint",
    "CheckpointStore",
    "ContinuousAuditor",
    "Epoch",
    "EpochSealer",
    "slice_epochs",
    "__version__",
]
