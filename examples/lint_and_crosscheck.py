#!/usr/bin/env python3
"""Instrumentation-completeness linting, end to end.

The apps in this repo are hand-written against the handler-context API;
nothing mechanical (like the paper's Babel transpiler) guarantees they
follow the annotation discipline the audit depends on.  This example:

1. lints a deliberately broken handler and shows what the linter flags;
2. lints the bundled wiki app clean;
3. crosschecks the analyzer itself against a recorded run (zero
   observed-but-unpredicted events = the static model covered reality);
4. audits the same run, closing the loop: lint-clean + crosscheck-sound
   + audit-accepted.

Run:  python examples/lint_and_crosscheck.py
"""

from repro import AppSpec, KVStore, KarousosPolicy, audit, run_server
from repro.analysis import crosscheck_app, lint_app
from repro.apps import wiki_app
from repro.workload import workload_for


# -- 1. A handler that breaks the contract three ways ---------------------

_hit_counter = []  # module-level mutable global: side channel (R2)


def handle_broken(ctx, req):
    _hit_counter.append(ctx.rid)        # R2: state the audit cannot see
    n = ctx.read("count")
    if n > 3:                           # R1: unlaundered branch on logged data
        ctx.write("count", 0)
        return                          # R5: this path never responds
    ctx.respond({"n": n})


def _init(ic):
    ic.create_var("count", 0)
    ic.register_route("poke", "handle_broken")


BROKEN = AppSpec("broken", {"handle_broken": handle_broken}, _init)


def main():
    print("== 1. Linting a contract-breaking handler ==")
    report = lint_app(BROKEN)
    print(report.format_text())
    assert not report.clean and {v.rule for v in report.violations} >= {
        "R1", "R2", "R5"
    }

    print("\n== 2. Linting the bundled wiki app ==")
    wiki_report = lint_app(wiki_app())
    print(wiki_report.format_text())
    assert wiki_report.clean

    print("\n== 3. Crosschecking the analyzer against a real run ==")
    result = crosscheck_app(wiki_app(), n_requests=60, seed=1)
    for line in result.format_text():
        print(line)
    assert result.sound, "static analysis missed observed behavior!"

    print("\n== 4. Auditing the same app ==")
    requests = workload_for("wiki", 60, mix="mixed", seed=1)
    run = run_server(
        wiki_app(),
        requests,
        KarousosPolicy(),
        store=KVStore(),
        concurrency=8,
    )
    verdict = audit(wiki_app(), run.trace, run.advice)
    print(f"audit accepted: {verdict.accepted}")
    assert verdict.accepted

    print("\nlint-clean + crosscheck-sound + audit-accepted: the full chain.")


if __name__ == "__main__":
    main()
