#!/usr/bin/env python3
"""Quickstart: write a tiny event-driven app, serve it with advice
collection, audit it -- then watch the audit catch a lying server.

Run:  python examples/quickstart.py
"""

from repro import (
    AppSpec,
    KarousosPolicy,
    RandomScheduler,
    Request,
    audit,
    run_server,
)


# 1. An application: a shared counter bumped by every request.  Handler
#    functions receive (ctx, payload); shared state goes through
#    ctx.read/ctx.write so the server can collect replay advice.
def handle_bump(ctx, req):
    n = ctx.read("counter")
    ctx.write("counter", ctx.apply(lambda v: v + 1, n))
    ctx.respond({"you_are_visitor": ctx.apply(lambda v: v + 1, n)})


def init(ic):
    ic.create_var("counter", 0)
    ic.register_route("bump", "handle_bump")


APP = AppSpec("quickstart", {"handle_bump": handle_bump}, init)


def main():
    requests = [Request.make(f"r{i:03d}", "bump") for i in range(20)]

    # 2. Serve on the Karousos server: it produces a trusted trace (what
    #    the collector saw) and untrusted advice (how to replay it).
    run = run_server(
        APP,
        requests,
        KarousosPolicy(),
        scheduler=RandomScheduler(seed=7),
        concurrency=4,
    )
    print(f"served {len(requests)} requests; "
          f"last response: {run.trace.response('r019')}")

    # 3. Audit: re-execute the trace in batches, guided by the advice.
    result = audit(APP, run.trace, run.advice)
    print(f"honest server:   {result!r}  "
          f"(groups={result.stats['groups']:.0f}, "
          f"graph={result.stats['graph_nodes']:.0f} nodes)")
    assert result.accepted

    # 4. A misbehaving server: claims a different response than the
    #    execution produced.  The audit must reject.
    tampered = run.trace.with_response("r010", {"you_are_visitor": 9999})
    result = audit(APP, tampered, run.advice)
    print(f"tampered server: {result!r}  ({result.detail})")
    assert not result.accepted


if __name__ == "__main__":
    main()
