#!/usr/bin/env python3
"""Audit the stack-dump application (paper section 6, 'stacks').

Demonstrates the full transactional pipeline: an event-driven app over a
serializable KV store, concurrent-duplicate retry errors, advice
collection (handler logs, variable logs, transaction logs, write order),
and the audit's isolation-level verification.

Run:  python examples/audit_stackdump.py
"""

from collections import Counter

from repro import (
    IsolationLevel,
    KarousosPolicy,
    KVStore,
    RandomScheduler,
    advice_breakdown,
    audit,
    run_server,
)
from repro.apps import stackdump_app
from repro.workload import stacks_workload


def main():
    workload = stacks_workload(80, mix="mixed", seed=3)
    store = KVStore(IsolationLevel.SERIALIZABLE)
    run = run_server(
        stackdump_app(),
        workload,
        KarousosPolicy(),
        store=store,
        scheduler=RandomScheduler(seed=3),
        concurrency=8,
    )

    statuses = Counter(r["status"] for r in run.trace.responses().values())
    print(f"responses by status: {dict(statuses)}")
    print(f"store: {store.stats['commits']} commits, "
          f"{store.stats['aborts']} aborts, {store.stats['retries']} conflicts")

    advice = run.advice
    print("\nadvice collected:")
    print(f"  re-execution groups : {len(set(advice.tags.values()))}")
    print(f"  handler log entries : {advice.handler_log_entry_count()}")
    print(f"  variable log entries: {advice.variable_log_entry_count()}")
    print(f"  tx log entries      : {advice.tx_log_entry_count()}")
    print(f"  write order length  : {len(advice.write_order)}")
    for component, size in sorted(advice_breakdown(advice).items()):
        print(f"  {component:<22s}{size:>8d} bytes")

    result = audit(stackdump_app(), run.trace, advice)
    print(f"\naudit: {result!r} in {result.stats['elapsed_seconds']*1000:.1f} ms "
          f"({result.stats['handlers_executed']:.0f} handler re-executions, "
          f"graph {result.stats['graph_nodes']:.0f} nodes / "
          f"{result.stats['graph_edges']:.0f} edges)")
    assert result.accepted

    # The same audit at a *claimed* weaker isolation level also passes
    # (a serializable history satisfies read-committed), but claiming a
    # history the store never produced would not -- see
    # examples/detect_tampering.py.
    advice.isolation_level = IsolationLevel.READ_COMMITTED
    relaxed = audit(stackdump_app(), run.trace, advice)
    print(f"re-audited at read-committed claim: {relaxed!r}")
    assert relaxed.accepted


if __name__ == "__main__":
    main()
