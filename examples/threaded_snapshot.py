#!/usr/bin/env python3
"""Extensions demo: real thread-level concurrency + snapshot isolation.

Serves the wiki on the multi-threaded KEM runtime against a
snapshot-isolated store, audits the (genuinely racy) execution, and runs
the static annotation analyzer -- the three extensions this reproduction
adds on top of the paper (its stated future work; see DESIGN.md).

Run:  python examples/threaded_snapshot.py
"""

from repro import IsolationLevel, KarousosPolicy, KVStore, RandomScheduler, audit
from repro.analysis import analyze_app, suggest_annotations
from repro.apps import wiki_app
from repro.kem.threaded import ThreadedRuntime
from repro.workload import wiki_workload


def main():
    app = wiki_app()
    policy = KarousosPolicy()
    store = KVStore(IsolationLevel.SNAPSHOT)
    runtime = ThreadedRuntime(
        app,
        policy,
        store=store,
        scheduler=RandomScheduler(seed=11),
        concurrency=8,    # admitted requests
        parallelism=4,    # OS threads executing handlers
    )
    policy.runtime = runtime
    requests = wiki_workload(60, seed=11)
    trace = runtime.serve(requests)
    advice = policy.advice()

    print(f"served {len(requests)} wiki requests on {runtime.parallelism} threads "
          f"under snapshot isolation")
    print(f"store: {store.stats['commits']} commits, {store.stats['aborts']} aborts "
          f"(first-committer-wins conflicts: {store.stats['retries']})")

    result = audit(wiki_app(), trace, advice)
    print(f"audit: {result!r} "
          f"({result.stats.get('groups', 0):.0f} groups, "
          f"{result.stats['elapsed_seconds']*1000:.0f} ms)")
    assert result.accepted, (result.reason, result.detail)

    print("\nstatic annotation analysis (paper section 1's suggested automation):")
    report = analyze_app(app)
    for var_id, suggestion in sorted(suggest_annotations(app).items()):
        print(f"  {var_id:<12s} {report.classification(var_id):<12s} -> {suggestion}")


if __name__ == "__main__":
    main()
