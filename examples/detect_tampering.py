#!/usr/bin/env python3
"""Run the whole attack library against an honest execution and show the
audit rejecting every guaranteed-invalid tampering (paper sections
4.3-4.4, Soundness).

Run:  python examples/detect_tampering.py
"""

from repro import (
    IsolationLevel,
    KarousosPolicy,
    KVStore,
    RandomScheduler,
    audit,
    run_server,
)
from repro.apps import stackdump_app
from repro.attacks import ALL_ATTACKS
from repro.workload import stacks_workload


def main():
    run = run_server(
        stackdump_app(),
        stacks_workload(60, mix="mixed", seed=5),
        KarousosPolicy(),
        store=KVStore(IsolationLevel.SERIALIZABLE),
        scheduler=RandomScheduler(seed=5),
        concurrency=6,
    )
    clean = audit(stackdump_app(), run.trace, run.advice)
    print(f"honest baseline: {clean!r}\n")
    assert clean.accepted

    print(f"{'attack':<30s} {'verdict':<28s} note")
    print("-" * 86)
    caught = 0
    for attack in ALL_ATTACKS:
        try:
            trace, advice = attack.apply(run.trace, run.advice)
        except LookupError:
            print(f"{attack.name:<30s} {'(no target in this run)':<28s}")
            continue
        result = audit(stackdump_app(), trace, advice)
        verdict = "ACCEPT" if result.accepted else f"REJECT({result.reason})"
        note = "" if attack.guaranteed else "not guaranteed-invalid"
        print(f"{attack.name:<30s} {verdict:<28s} {note}")
        if attack.guaranteed:
            assert not result.accepted, f"{attack.name} must be rejected"
            caught += 1
    print(f"\n{caught} guaranteed attacks, {caught} rejected.")


if __name__ == "__main__":
    main()
