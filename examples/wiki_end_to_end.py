#!/usr/bin/env python3
"""End-to-end comparison on the wiki application (paper Figures 6-8).

Serves the wiki workload at increasing concurrency and compares, for each
level: server overhead (Karousos vs unmodified), verification time
(Karousos vs Orochi-JS vs sequential re-execution), and advice size.

Run:  python examples/wiki_end_to_end.py
"""

from repro.harness import print_series
from repro.harness.experiment import (
    ExperimentConfig,
    measure_advice_sizes,
    measure_server_overhead,
    measure_verification,
)


def main():
    rows = []
    for concurrency in (1, 10, 30):
        cfg = ExperimentConfig(
            "wiki", n_requests=200, concurrency=concurrency, seed=0
        )
        server = measure_server_overhead(cfg, repeats=3)
        verify = measure_verification(cfg, repeats=2)
        sizes = measure_advice_sizes(cfg)
        rows.append(
            {
                "concurrency": concurrency,
                "server_overhead_x": server.overhead,
                "verify_karousos_s": verify.karousos_seconds,
                "verify_orochi_s": verify.orochi_seconds,
                "verify_sequential_s": verify.sequential_seconds,
                "groups_K/O": f"{verify.karousos_groups}/{verify.orochi_groups}",
                "advice_K_KiB": sizes.karousos_bytes / 1024,
                "advice_O_KiB": sizes.orochi_bytes / 1024,
            }
        )
    print_series(
        "Wiki end to end (200 requests, mixed workload)",
        rows,
        [
            "concurrency",
            "server_overhead_x",
            "verify_karousos_s",
            "verify_orochi_s",
            "verify_sequential_s",
            "groups_K/O",
            "advice_K_KiB",
            "advice_O_KiB",
        ],
    )
    print(
        "\nShape notes (cf. paper section 6): auditability costs the server a"
        "\nconstant factor; the Karousos verifier batches re-execution and"
        "\nships less advice than Orochi-JS thanks to R-ordered (unlogged)"
        "\naccesses such as the read-mostly site config."
    )


if __name__ == "__main__":
    main()
